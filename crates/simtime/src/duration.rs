//! [`Dur`]: a span of simulated time, in integer nanoseconds.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A span of simulated time, stored as integer nanoseconds.
///
/// `Dur` is ordered, hashable and exact. Arithmetic panics on overflow in
/// debug builds and wraps in release like native integers would — but every
/// quantity in this workspace stays far below `u64::MAX` ns (≈ 584 years),
/// so in practice overflow indicates a logic bug. Use the `checked_*`
/// variants at trust boundaries (e.g. when computing LCMs of user-supplied
/// iteration times).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dur(u64);

impl Dur {
    /// The zero-length span.
    pub const ZERO: Dur = Dur(0);
    /// One nanosecond.
    pub const NANOSECOND: Dur = Dur(1);
    /// One microsecond.
    pub const MICROSECOND: Dur = Dur(1_000);
    /// One millisecond.
    pub const MILLISECOND: Dur = Dur(1_000_000);
    /// One second.
    pub const SECOND: Dur = Dur(1_000_000_000);
    /// The longest representable span.
    pub const MAX: Dur = Dur(u64::MAX);

    /// A span of `ns` nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// A span of `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// A span of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// A span of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// A span from fractional seconds, rounded to the nearest nanosecond.
    ///
    /// # Panics
    /// Panics if `s` is negative, NaN, or too large to represent.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Dur {
        assert!(
            s >= 0.0 && s.is_finite(),
            "Dur::from_secs_f64: invalid seconds {s}"
        );
        let ns = s * 1e9;
        assert!(
            ns <= u64::MAX as f64,
            "Dur::from_secs_f64: overflow ({s} s)"
        );
        Dur(ns.round() as u64)
    }

    /// A span from fractional milliseconds, rounded to the nearest nanosecond.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Dur {
        Dur::from_secs_f64(ms / 1e3)
    }

    /// The span as integer nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span as integer microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span as integer milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Dur) -> Option<Dur> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Dur(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` if `rhs > self`.
    #[inline]
    pub const fn checked_sub(self, rhs: Dur) -> Option<Dur> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Dur(v)),
            None => None,
        }
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    #[inline]
    pub const fn checked_mul(self, k: u64) -> Option<Dur> {
        match self.0.checked_mul(k) {
            Some(v) => Some(Dur(v)),
            None => None,
        }
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition (clamps at [`Dur::MAX`]).
    #[inline]
    pub const fn saturating_add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Multiply by a non-negative float, rounding to the nearest nanosecond.
    ///
    /// Useful for "80 % of an iteration" style computations where exactness
    /// is not required.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Dur {
        assert!(
            k >= 0.0 && k.is_finite(),
            "Dur::mul_f64: invalid factor {k}"
        );
        Dur((self.0 as f64 * k).round() as u64)
    }

    /// The ratio `self / other` as a float.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    #[inline]
    pub fn ratio(self, other: Dur) -> f64 {
        assert!(!other.is_zero(), "Dur::ratio: division by zero duration");
        self.0 as f64 / other.0 as f64
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }
}

impl Mul<Dur> for u64 {
    type Output = Dur;
    #[inline]
    fn mul(self, d: Dur) -> Dur {
        Dur(self * d.0)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

/// Integer division of one span by another: "how many whole `rhs` fit in
/// `self`".
impl Div<Dur> for Dur {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Dur) -> u64 {
        self.0 / rhs.0
    }
}

/// Remainder of one span modulo another — the workhorse of the paper's
/// "roll time around a circle" abstraction: `t % perimeter` is the position
/// of instant offset `t` on the circle.
impl Rem<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn rem(self, rhs: Dur) -> Dur {
        Dur(self.0 % rhs.0)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, Add::add)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Dur {
    /// Formats with the most natural unit: `250ns`, `125µs`, `297ms`,
    /// `1.301s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            format_scaled(f, ns, 1_000, "µs")
        } else if ns < 1_000_000_000 {
            format_scaled(f, ns, 1_000_000, "ms")
        } else {
            format_scaled(f, ns, 1_000_000_000, "s")
        }
    }
}

fn format_scaled(f: &mut fmt::Formatter<'_>, ns: u64, unit: u64, suffix: &str) -> fmt::Result {
    let whole = ns / unit;
    let frac = ns % unit;
    if frac == 0 {
        write!(f, "{whole}{suffix}")
    } else {
        let v = ns as f64 / unit as f64;
        write!(f, "{v:.3}{suffix}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Dur::from_micros(125), Dur::from_nanos(125_000));
        assert_eq!(Dur::from_millis(297), Dur::from_nanos(297_000_000));
        assert_eq!(Dur::from_secs(2), Dur::from_millis(2_000));
        assert_eq!(Dur::from_secs_f64(0.000_125), Dur::from_micros(125));
        assert_eq!(Dur::from_millis_f64(1.5), Dur::from_micros(1_500));
    }

    #[test]
    fn arithmetic_basics() {
        let a = Dur::from_millis(40);
        let b = Dur::from_millis(60);
        assert_eq!(a + b, Dur::from_millis(100));
        assert_eq!(b - a, Dur::from_millis(20));
        assert_eq!(a * 3, Dur::from_millis(120));
        assert_eq!(b / 2, Dur::from_millis(30));
        assert_eq!(Dur::from_millis(120) / a, 3);
        assert_eq!(Dur::from_millis(130) % b, Dur::from_millis(10));
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(Dur::ZERO.saturating_sub(Dur::SECOND), Dur::ZERO);
        assert_eq!(Dur::MAX.saturating_add(Dur::SECOND), Dur::MAX);
        assert_eq!(Dur::MAX.checked_add(Dur::NANOSECOND), None);
        assert_eq!(Dur::SECOND.checked_sub(Dur::MILLISECOND * 1001), None);
        assert_eq!(Dur::MAX.checked_mul(2), None);
        assert_eq!(Dur::SECOND.checked_mul(3), Some(Dur::from_secs(3)));
    }

    #[test]
    fn ratio_and_mul_f64() {
        assert_eq!(
            Dur::from_millis(141).ratio(Dur::from_millis(255)),
            141.0 / 255.0
        );
        assert_eq!(Dur::from_millis(100).mul_f64(0.5), Dur::from_millis(50));
        assert_eq!(Dur::from_nanos(3).mul_f64(0.5), Dur::from_nanos(2)); // rounds
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn ratio_zero_panics() {
        let _ = Dur::SECOND.ratio(Dur::ZERO);
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Dur::ZERO.to_string(), "0s");
        assert_eq!(Dur::from_nanos(250).to_string(), "250ns");
        assert_eq!(Dur::from_micros(125).to_string(), "125µs");
        assert_eq!(Dur::from_millis(297).to_string(), "297ms");
        assert_eq!(Dur::from_millis(1301).to_string(), "1.301s");
    }

    proptest! {
        #[test]
        fn add_sub_roundtrip(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let (a, b) = (Dur::from_nanos(a), Dur::from_nanos(b));
            prop_assert_eq!((a + b) - b, a);
        }

        #[test]
        fn div_rem_decompose(a in 0u64..u64::MAX, b in 1u64..u64::MAX) {
            let (a, b) = (Dur::from_nanos(a), Dur::from_nanos(b));
            let q = a / b;
            let r = a % b;
            prop_assert!(r < b);
            prop_assert_eq!(b * q + r, a);
        }

        #[test]
        fn secs_f64_roundtrip_close(ns in 0u64..1_000_000_000_000u64) {
            let d = Dur::from_nanos(ns);
            let back = Dur::from_secs_f64(d.as_secs_f64());
            // f64 has 52 mantissa bits; within 1µs over this range is ample.
            let diff = back.as_nanos().abs_diff(d.as_nanos());
            prop_assert!(diff < 1_000, "diff {diff}ns");
        }
    }
}
