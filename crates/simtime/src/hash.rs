//! The workspace's one canonical byte hash: FNV-1a over 64 bits.
//!
//! Several layers need a cheap, deterministic, platform-stable fingerprint
//! of structured data — ECMP flow spreading in `topology`, config
//! fingerprints in run summaries, and snapshot-cache keys in forked
//! sweeps. They must all agree on *one* construction, both so the logic
//! isn't re-implemented with subtle drift and so a fingerprint computed in
//! one layer can be compared in another. This module is that single
//! implementation; everything else delegates here.
//!
//! FNV-1a is not cryptographic. It is used strictly for spreading and
//! cache identity, never for integrity against an adversary.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A streaming FNV-1a hasher for callers that fold in several fields.
///
/// ```
/// use simtime::hash::Fnv64;
/// let mut h = Fnv64::new();
/// h.write(b"fig1");
/// h.write_u64(100);
/// let a = h.finish();
/// assert_eq!(a, {
///     let mut h = Fnv64::new();
///     h.write(b"fig1");
///     h.write_u64(100);
///     h.finish()
/// });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` in little-endian byte order (the workspace convention).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// The canonical config fingerprint: FNV-1a over a config's canonical
/// textual description, truncated to 53 bits so the value survives a round
/// trip through the flat `f64` metric maps (`RunSummary`, `HISTORY.jsonl`)
/// without loss.
///
/// Both `report --summary` and the forked-sweep snapshot cache key on this
/// exact function — a summary's `config.hash` and a prefix cache entry for
/// the same configuration are directly comparable.
pub fn config_hash(desc: &str) -> u64 {
    fnv1a_64(desc.as_bytes()) & ((1 << 53) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_frozen() {
        // FNV-1a of the empty string is the offset basis; "a" is the
        // published test vector. If these move, every fingerprint in the
        // workspace silently changes.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"fig1/");
        h.write(b"unfair");
        assert_eq!(h.finish(), fnv1a_64(b"fig1/unfair"));
    }

    #[test]
    fn config_hash_fits_f64_exactly() {
        for desc in ["", "fig1", "chaos seeds=[6,16,25] profiles=[links]"] {
            let h = config_hash(desc);
            assert!(h < (1 << 53));
            assert_eq!(h as f64 as u64, h, "53-bit hash must round-trip f64");
        }
    }

    #[test]
    fn distinct_configs_get_distinct_hashes() {
        assert_ne!(
            config_hash("fig1 iterations=10"),
            config_hash("fig1 iterations=11")
        );
    }
}
