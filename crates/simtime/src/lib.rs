//! Integer-nanosecond time, bandwidth and byte-size units for deterministic
//! network simulation.
//!
//! Everything in the `mlcc` workspace measures time as an integer number of
//! nanoseconds. This is a deliberate foundation decision (see `DESIGN.md`):
//!
//! * the geometric abstraction of the paper needs an **exact** least common
//!   multiple of job iteration times to build the unified circle — floats
//!   cannot provide one;
//! * discrete-event simulation needs a total order on timestamps that is
//!   stable across platforms and optimization levels;
//! * iteration times of real DNN jobs span 5 orders of magnitude
//!   (microsecond timers to multi-second iterations), which `u64`
//!   nanoseconds cover with room to spare (≈ 584 years).
//!
//! The two core types are [`Time`] (an absolute instant on the simulation
//! clock) and [`Dur`] (a span between instants). They are deliberately *not*
//! interchangeable: adding two `Time`s is meaningless and does not compile.
//!
//! [`Bandwidth`] (bits per second) and [`ByteSize`] (bytes) round out the
//! unit system, with the conversions a flow-level simulator needs:
//! "how long does it take to move `B` bytes at rate `R`" and
//! "how many bytes move in `dt` at rate `R`".
//!
//! # Example
//!
//! ```
//! use simtime::{Bandwidth, ByteSize, Dur, Time, lcm_many};
//!
//! // Time vs duration: distinct types, checked arithmetic.
//! let t0 = Time::ZERO + Dur::from_millis(141);
//! assert_eq!((t0 + Dur::from_millis(114)) - t0, Dur::from_millis(114));
//!
//! // Rate × time ↔ bytes, exactly.
//! let line = Bandwidth::from_gbps(50);
//! assert_eq!(line.time_to_send(ByteSize::from_mb(712)), Dur::from_micros(113_920));
//!
//! // The unified-circle perimeter of the paper's Fig. 5.
//! let perimeter = lcm_many(&[Dur::from_millis(40), Dur::from_millis(60)]).unwrap();
//! assert_eq!(perimeter, Dur::from_millis(120));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod duration;
pub mod hash;
mod numeric;
mod time;

pub use bandwidth::{Bandwidth, ByteSize};
pub use duration::Dur;
pub use numeric::{gcd_u64, lcm_many, lcm_u64, lcm_u64_checked};
pub use time::Time;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_compose_across_modules() {
        // 1 MB at 8 Mbit/s takes exactly one second.
        let t = Bandwidth::from_mbps(8).time_to_send(ByteSize::from_mb(1));
        assert_eq!(t, Dur::from_secs(1));
        // And the round trip recovers the byte count.
        assert_eq!(
            Bandwidth::from_mbps(8).bytes_in(Dur::from_secs(1)),
            ByteSize::from_mb(1)
        );
    }
}
