//! Integer GCD/LCM helpers used by the unified-circle construction.
//!
//! The paper generalizes its circular abstraction to jobs with different
//! iteration times by building a **unified circle** whose perimeter is the
//! least common multiple of all iteration times (§3). These helpers provide
//! exact LCMs over [`Dur`]-style nanosecond integers, with checked variants
//! for user-supplied inputs where the LCM might genuinely overflow.

use crate::Dur;

/// Greatest common divisor (binary-free Euclid; `gcd(0, b) = b`).
#[inline]
pub const fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple.
///
/// # Panics
/// Panics on overflow; use [`lcm_u64_checked`] for untrusted inputs.
/// `lcm(0, x) = 0` by convention.
#[inline]
pub fn lcm_u64(a: u64, b: u64) -> u64 {
    lcm_u64_checked(a, b).expect("lcm_u64: overflow")
}

/// Least common multiple, `None` on overflow. `lcm(0, x) = 0`.
#[inline]
pub const fn lcm_u64_checked(a: u64, b: u64) -> Option<u64> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    let g = gcd_u64(a, b);
    // (a / g) * b never loses precision since g divides a.
    (a / g).checked_mul(b)
}

/// Least common multiple of a slice of durations — the unified-circle
/// perimeter for a set of job iteration times.
///
/// Returns `None` if the slice is empty, contains a zero duration, or the
/// LCM overflows `u64` nanoseconds. Callers quantize iteration times to a
/// coarser grid (see `geometry`) before calling this when overflow is a
/// realistic concern.
pub fn lcm_many(durs: &[Dur]) -> Option<Dur> {
    let mut acc: u64 = 1;
    if durs.is_empty() {
        return None;
    }
    for d in durs {
        if d.is_zero() {
            return None;
        }
        acc = lcm_u64_checked(acc, d.as_nanos())?;
    }
    Some(Dur::from_nanos(acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(gcd_u64(17, 5), 1);
        assert_eq!(gcd_u64(0, 9), 9);
        assert_eq!(gcd_u64(9, 0), 9);
        assert_eq!(gcd_u64(0, 0), 0);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm_u64(40, 60), 120); // the paper's Fig. 5 example
        assert_eq!(lcm_u64(7, 3), 21);
        assert_eq!(lcm_u64(0, 5), 0);
        assert_eq!(lcm_u64_checked(u64::MAX, u64::MAX - 1), None);
    }

    #[test]
    fn lcm_many_paper_example() {
        // Fig. 5: iteration times 40 ms and 60 ms → 120 ms unified circle.
        let p = lcm_many(&[Dur::from_millis(40), Dur::from_millis(60)]).unwrap();
        assert_eq!(p, Dur::from_millis(120));
    }

    #[test]
    fn lcm_many_edge_cases() {
        assert_eq!(lcm_many(&[]), None);
        assert_eq!(lcm_many(&[Dur::ZERO, Dur::SECOND]), None);
        assert_eq!(
            lcm_many(&[Dur::from_millis(255)]),
            Some(Dur::from_millis(255))
        );
        // Overflow: two large coprime ns counts.
        let big = Dur::from_nanos((1 << 62) - 1);
        let big2 = Dur::from_nanos(1 << 62);
        assert_eq!(lcm_many(&[big, big2]), None);
    }

    proptest! {
        #[test]
        fn gcd_divides_both(a in 1u64..1_000_000, b in 1u64..1_000_000) {
            let g = gcd_u64(a, b);
            prop_assert!(g > 0);
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        }

        #[test]
        fn lcm_is_common_multiple(a in 1u64..100_000, b in 1u64..100_000) {
            let l = lcm_u64(a, b);
            prop_assert_eq!(l % a, 0);
            prop_assert_eq!(l % b, 0);
            // Minimality: lcm * gcd == a * b.
            prop_assert_eq!(l as u128 * gcd_u64(a, b) as u128, a as u128 * b as u128);
        }

        #[test]
        fn lcm_many_divides(xs in proptest::collection::vec(1u64..10_000, 1..6)) {
            let durs: Vec<Dur> = xs.iter().map(|&x| Dur::from_nanos(x)).collect();
            let l = lcm_many(&durs).unwrap();
            for d in &durs {
                prop_assert_eq!(l.as_nanos() % d.as_nanos(), 0);
            }
        }
    }
}
