//! [`Time`]: an absolute instant on the simulation clock.

use crate::Dur;
use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// `Time` and [`Dur`] are distinct types on purpose: `Time + Time` does not
/// compile, `Time - Time = Dur`, and `Time ± Dur = Time`. This catches an
/// entire class of off-by-an-epoch bugs at compile time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Time(u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as "never" sentinel).
    pub const MAX: Time = Time(u64::MAX);

    /// The instant `ns` nanoseconds after simulation start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// The instant as nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant as fractional seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The instant as fractional milliseconds since simulation start.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span since simulation start (i.e. `self - Time::ZERO`).
    #[inline]
    pub const fn elapsed(self) -> Dur {
        Dur::from_nanos(self.0)
    }

    /// The span from `earlier` to `self`, clamped at zero if `earlier` is
    /// actually later.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Checked advance; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, d: Dur) -> Option<Time> {
        match self.0.checked_add(d.as_nanos()) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Position of this instant on a circle of the given perimeter — the
    /// paper's "roll time around a circle" primitive.
    ///
    /// # Panics
    /// Panics if `perimeter` is zero.
    #[inline]
    pub fn on_circle(self, perimeter: Dur) -> Dur {
        assert!(!perimeter.is_zero(), "Time::on_circle: zero perimeter");
        Dur::from_nanos(self.0 % perimeter.as_nanos())
    }

    /// The smaller of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, d: Dur) -> Time {
        Time(self.0 + d.as_nanos())
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.as_nanos();
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, d: Dur) -> Time {
        Time(self.0 - d.as_nanos())
    }
}

impl SubAssign<Dur> for Time {
    #[inline]
    fn sub_assign(&mut self, d: Dur) {
        self.0 -= d.as_nanos();
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur::from_nanos(self.0 - rhs.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", Dur::from_nanos(self.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Dur::from_nanos(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_dur_algebra() {
        let t0 = Time::from_nanos(1_000);
        let t1 = t0 + Dur::from_nanos(500);
        assert_eq!(t1.as_nanos(), 1_500);
        assert_eq!(t1 - t0, Dur::from_nanos(500));
        assert_eq!(t1 - Dur::from_nanos(1_500), Time::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = Time::from_nanos(100);
        let late = Time::from_nanos(300);
        assert_eq!(late.saturating_since(early), Dur::from_nanos(200));
        assert_eq!(early.saturating_since(late), Dur::ZERO);
    }

    #[test]
    fn on_circle_wraps() {
        let perimeter = Dur::from_millis(255);
        // Instant at 3 iterations + 17 ms lands at 17 ms on the circle.
        let t = Time::ZERO + perimeter * 3 + Dur::from_millis(17);
        assert_eq!(t.on_circle(perimeter), Dur::from_millis(17));
        assert_eq!(Time::ZERO.on_circle(perimeter), Dur::ZERO);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Time::from_nanos(5);
        let b = Time::from_nanos(9);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Time::MAX.checked_add(Dur::NANOSECOND), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_nanos(125_000).to_string(), "125µs");
        assert_eq!(format!("{:?}", Time::from_nanos(125_000)), "t=125µs");
    }
}
