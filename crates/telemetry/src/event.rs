//! Typed events emitted by the instrumented simulators.

use simtime::Time;

/// Which side of the compute ↔ communicate cycle a job is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    Compute,
    Communicate,
}

impl Phase {
    pub fn label(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Communicate => "communicate",
        }
    }
}

/// Congestion-control state attached to a rate-change event.
///
/// The DCQCN stages mirror the reaction-point increase machinery
/// (SIGCOMM '15 §5): cuts happen on CNP arrival, and between cuts the rate
/// climbs through fast recovery, additive increase, and hyper increase.
/// `Alloc` tags rates assigned by the fluid engine's max-min solver, which
/// bypasses the DCQCN state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcState {
    /// Jumped back to line rate at a phase restart.
    Restart,
    /// Multiplicative cut in response to a CNP.
    Cut,
    /// Binary-search climb back toward the target rate.
    FastRecovery,
    /// Linear probing above the last known-good rate.
    AdditiveIncrease,
    /// Exponential probing after a long quiet period.
    HyperIncrease,
    /// Rate set by a fluid-model allocation, not a DCQCN transition.
    Alloc,
    /// Rate governed by a delay-based controller (Swift), which has no
    /// DCQCN stages.
    Delay,
}

impl CcState {
    pub fn label(self) -> &'static str {
        match self {
            CcState::Restart => "restart",
            CcState::Cut => "cut",
            CcState::FastRecovery => "fast_recovery",
            CcState::AdditiveIncrease => "additive_increase",
            CcState::HyperIncrease => "hyper_increase",
            CcState::Alloc => "alloc",
            CcState::Delay => "delay",
        }
    }
}

/// One structured observation from a simulation.
///
/// `flow`/`job` indices refer to the engine's job order (the order jobs were
/// passed at construction), which experiments also use for stats.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Bottleneck queue occupancy, in bytes.
    QueueDepth { link: u32, bytes: f64 },
    /// The congestion point ECN-marked traffic of `flow`.
    EcnMark { flow: u32 },
    /// The notification point emitted a CNP toward `flow`'s sender.
    CnpSent { flow: u32 },
    /// A CNP reached `flow`'s reaction point (rate cut follows).
    CnpReceived { flow: u32 },
    /// `flow`'s sending rate changed to `bps`, tagged with the CC state
    /// that produced it.
    RateChange { flow: u32, bps: f64, state: CcState },
    /// `job` entered `phase` of iteration `iteration`.
    PhaseEnter {
        job: u32,
        phase: Phase,
        iteration: u64,
    },
    /// `job` left `phase` of iteration `iteration`.
    PhaseExit {
        job: u32,
        phase: Phase,
        iteration: u64,
    },
    /// A solver pass ran (e.g. one fluid-engine rate allocation).
    SolverIteration { component: &'static str, index: u64 },
    /// A scheduler gate released `job`'s communication phase.
    GateRelease { job: u32 },
    /// Marks the start of a named scenario; later events belong to it.
    Scenario { name: String },
    /// `job`'s traffic traverses `links` — emitted once per job at engine
    /// construction so analyzers can attribute flows to links. Engines with
    /// a single bottleneck report `links = [0]`.
    JobPath { job: u32, links: Vec<u32> },
    /// Link `link`'s usable capacity changed to `fraction` of nominal
    /// (fault injection: degradation windows and up/down flaps). Only
    /// emitted when a chaos link schedule is active.
    LinkCapacity { link: u32, fraction: f64 },
    /// `job` departed the cluster mid-run (churn): no further phases.
    JobDepart { job: u32 },
}

impl Event {
    /// Short machine-readable tag, used as the JSONL `type` field and for
    /// counting events by kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::QueueDepth { .. } => "queue_depth",
            Event::EcnMark { .. } => "ecn_mark",
            Event::CnpSent { .. } => "cnp_sent",
            Event::CnpReceived { .. } => "cnp_received",
            Event::RateChange { .. } => "rate_change",
            Event::PhaseEnter { .. } => "phase_enter",
            Event::PhaseExit { .. } => "phase_exit",
            Event::SolverIteration { .. } => "solver_iteration",
            Event::GateRelease { .. } => "gate_release",
            Event::Scenario { .. } => "scenario",
            Event::JobPath { .. } => "job_path",
            Event::LinkCapacity { .. } => "link_capacity",
            Event::JobDepart { .. } => "job_depart",
        }
    }

    /// The flow index the event is about, for per-flow events (ECN marks,
    /// CNPs, rate changes).
    pub fn flow(&self) -> Option<u32> {
        match self {
            Event::EcnMark { flow }
            | Event::CnpSent { flow }
            | Event::CnpReceived { flow }
            | Event::RateChange { flow, .. } => Some(*flow),
            _ => None,
        }
    }

    /// The job index the event is about, for per-job events (phase
    /// transitions, gate releases, path announcements). Flow-indexed events
    /// also answer here: every engine in this workspace runs one flow per
    /// job and uses the same index for both.
    pub fn job(&self) -> Option<u32> {
        match self {
            Event::PhaseEnter { job, .. }
            | Event::PhaseExit { job, .. }
            | Event::GateRelease { job }
            | Event::JobPath { job, .. }
            | Event::JobDepart { job } => Some(*job),
            _ => self.flow(),
        }
    }
}

/// An [`Event`] stamped with simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    pub at: Time,
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_labels_are_stable() {
        assert_eq!(Event::EcnMark { flow: 0 }.kind(), "ecn_mark");
        assert_eq!(Event::CnpReceived { flow: 1 }.kind(), "cnp_received");
        assert_eq!(Phase::Communicate.label(), "communicate");
        assert_eq!(CcState::HyperIncrease.label(), "hyper_increase");
    }
}
