//! Typed events emitted by the instrumented simulators.

use simtime::Time;

/// Which side of the compute ↔ communicate cycle a job is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    Compute,
    Communicate,
}

impl Phase {
    pub fn label(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Communicate => "communicate",
        }
    }
}

/// Congestion-control state attached to a rate-change event.
///
/// The DCQCN stages mirror the reaction-point increase machinery
/// (SIGCOMM '15 §5): cuts happen on CNP arrival, and between cuts the rate
/// climbs through fast recovery, additive increase, and hyper increase.
/// `Alloc` tags rates assigned by the fluid engine's max-min solver, which
/// bypasses the DCQCN state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcState {
    /// Jumped back to line rate at a phase restart.
    Restart,
    /// Multiplicative cut in response to a CNP.
    Cut,
    /// Binary-search climb back toward the target rate.
    FastRecovery,
    /// Linear probing above the last known-good rate.
    AdditiveIncrease,
    /// Exponential probing after a long quiet period.
    HyperIncrease,
    /// Rate set by a fluid-model allocation, not a DCQCN transition.
    Alloc,
    /// Rate governed by a delay-based controller (Swift), which has no
    /// DCQCN stages.
    Delay,
}

impl CcState {
    pub fn label(self) -> &'static str {
        match self {
            CcState::Restart => "restart",
            CcState::Cut => "cut",
            CcState::FastRecovery => "fast_recovery",
            CcState::AdditiveIncrease => "additive_increase",
            CcState::HyperIncrease => "hyper_increase",
            CcState::Alloc => "alloc",
            CcState::Delay => "delay",
        }
    }
}

/// What a typed span covers: a whole iteration, or one of its phases.
///
/// Spans form a two-level tree per job: an `Iteration` span opens when a
/// job starts iteration `i` and closes when the iteration's communication
/// completes; inside it, one `Compute` and one `Communicate` span bracket
/// the corresponding phases. Span identity is *derived*, not stored — see
/// [`span_id`] — so span events stay as small as phase events and
/// round-trip through JSONL without extra fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    Iteration,
    Compute,
    Communicate,
}

impl SpanKind {
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Iteration => "iteration",
            SpanKind::Compute => "compute",
            SpanKind::Communicate => "communicate",
        }
    }

    fn code(self) -> u64 {
        match self {
            SpanKind::Iteration => 1,
            SpanKind::Compute => 2,
            SpanKind::Communicate => 3,
        }
    }
}

/// Globally unique span id, derived from (job, kind, iteration).
///
/// Exporters emit this as the span's `id` so viewers and analyzers can
/// match a `span_end` to its `span_begin` without positional pairing; the
/// JSONL parser ignores it on the way back in (it re-derives identity from
/// the stored fields), which keeps round-trips exact.
pub fn span_id(job: u32, kind: SpanKind, iteration: u64) -> u64 {
    (u64::from(job) + 1) << 40 | (iteration & ((1 << 38) - 1)) << 2 | kind.code()
}

/// Parent span id: phases nest under their iteration; iterations are roots.
pub fn span_parent(job: u32, kind: SpanKind, iteration: u64) -> u64 {
    match kind {
        SpanKind::Iteration => 0,
        SpanKind::Compute | SpanKind::Communicate => span_id(job, SpanKind::Iteration, iteration),
    }
}

/// One structured observation from a simulation.
///
/// `flow`/`job` indices refer to the engine's job order (the order jobs were
/// passed at construction), which experiments also use for stats.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Bottleneck queue occupancy, in bytes.
    QueueDepth { link: u32, bytes: f64 },
    /// The congestion point ECN-marked traffic of `flow`.
    EcnMark { flow: u32 },
    /// The notification point emitted a CNP toward `flow`'s sender.
    CnpSent { flow: u32 },
    /// A CNP reached `flow`'s reaction point (rate cut follows).
    CnpReceived { flow: u32 },
    /// `flow`'s sending rate changed to `bps`, tagged with the CC state
    /// that produced it.
    RateChange { flow: u32, bps: f64, state: CcState },
    /// `job` entered `phase` of iteration `iteration`.
    PhaseEnter {
        job: u32,
        phase: Phase,
        iteration: u64,
    },
    /// `job` left `phase` of iteration `iteration`.
    PhaseExit {
        job: u32,
        phase: Phase,
        iteration: u64,
    },
    /// A solver pass ran (e.g. one fluid-engine rate allocation).
    SolverIteration { component: &'static str, index: u64 },
    /// A scheduler gate released `job`'s communication phase.
    GateRelease { job: u32 },
    /// Marks the start of a named scenario; later events belong to it.
    Scenario { name: String },
    /// `job`'s traffic traverses `links` — emitted once per job at engine
    /// construction so analyzers can attribute flows to links. Engines with
    /// a single bottleneck report `links = [0]`.
    JobPath { job: u32, links: Vec<u32> },
    /// Link `link`'s usable capacity changed to `fraction` of nominal
    /// (fault injection: degradation windows and up/down flaps). Only
    /// emitted when a chaos link schedule is active.
    LinkCapacity { link: u32, fraction: f64 },
    /// `job` departed the cluster mid-run (churn): no further phases.
    JobDepart { job: u32 },
    /// A typed span opened: `job` began `kind` of iteration `iteration`.
    /// Spans nest strictly per job (iteration ⊃ phase); see [`SpanKind`].
    SpanBegin {
        job: u32,
        kind: SpanKind,
        iteration: u64,
    },
    /// A typed span closed. Always matches the innermost open span of the
    /// same job (LIFO) in a well-formed stream.
    SpanEnd {
        job: u32,
        kind: SpanKind,
        iteration: u64,
    },
}

impl Event {
    /// Short machine-readable tag, used as the JSONL `type` field and for
    /// counting events by kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::QueueDepth { .. } => "queue_depth",
            Event::EcnMark { .. } => "ecn_mark",
            Event::CnpSent { .. } => "cnp_sent",
            Event::CnpReceived { .. } => "cnp_received",
            Event::RateChange { .. } => "rate_change",
            Event::PhaseEnter { .. } => "phase_enter",
            Event::PhaseExit { .. } => "phase_exit",
            Event::SolverIteration { .. } => "solver_iteration",
            Event::GateRelease { .. } => "gate_release",
            Event::Scenario { .. } => "scenario",
            Event::JobPath { .. } => "job_path",
            Event::LinkCapacity { .. } => "link_capacity",
            Event::JobDepart { .. } => "job_depart",
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
        }
    }

    /// The flow index the event is about, for per-flow events (ECN marks,
    /// CNPs, rate changes).
    pub fn flow(&self) -> Option<u32> {
        match self {
            Event::EcnMark { flow }
            | Event::CnpSent { flow }
            | Event::CnpReceived { flow }
            | Event::RateChange { flow, .. } => Some(*flow),
            _ => None,
        }
    }

    /// The job index the event is about, for per-job events (phase
    /// transitions, gate releases, path announcements). Flow-indexed events
    /// also answer here: every engine in this workspace runs one flow per
    /// job and uses the same index for both.
    pub fn job(&self) -> Option<u32> {
        match self {
            Event::PhaseEnter { job, .. }
            | Event::PhaseExit { job, .. }
            | Event::GateRelease { job }
            | Event::JobPath { job, .. }
            | Event::JobDepart { job }
            | Event::SpanBegin { job, .. }
            | Event::SpanEnd { job, .. } => Some(*job),
            _ => self.flow(),
        }
    }
}

/// An [`Event`] stamped with simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    pub at: Time,
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_labels_are_stable() {
        assert_eq!(Event::EcnMark { flow: 0 }.kind(), "ecn_mark");
        assert_eq!(Event::CnpReceived { flow: 1 }.kind(), "cnp_received");
        assert_eq!(Phase::Communicate.label(), "communicate");
        assert_eq!(CcState::HyperIncrease.label(), "hyper_increase");
        assert_eq!(
            Event::SpanBegin {
                job: 0,
                kind: SpanKind::Iteration,
                iteration: 0
            }
            .kind(),
            "span_begin"
        );
        assert_eq!(SpanKind::Communicate.label(), "communicate");
    }

    #[test]
    fn span_ids_are_unique_and_parents_nest() {
        let mut seen = std::collections::BTreeSet::new();
        for job in 0..4u32 {
            for iter in 0..16u64 {
                for kind in [
                    SpanKind::Iteration,
                    SpanKind::Compute,
                    SpanKind::Communicate,
                ] {
                    let id = span_id(job, kind, iter);
                    assert!(seen.insert(id), "duplicate span id {id}");
                    let parent = span_parent(job, kind, iter);
                    if kind == SpanKind::Iteration {
                        assert_eq!(parent, 0);
                    } else {
                        assert_eq!(parent, span_id(job, SpanKind::Iteration, iter));
                    }
                }
            }
        }
        // Ids are never zero (zero is the "no parent" sentinel).
        assert!(seen.iter().all(|&id| id != 0));
    }
}
