//! Exporters: JSONL event logs and Chrome-trace JSON timelines.
//!
//! Both formats are hand-rolled (no serde in this workspace) and fully
//! deterministic: same event buffer in, byte-identical text out. The Chrome
//! trace loads in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`;
//! each `Scenario` marker starts a new "process" so multi-scenario runs (fair
//! vs. unfair, sweep points) appear side by side.

use crate::event::{span_id, span_parent, Event, TimedEvent};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One JSON object per line, one line per event. `t_ns` is simulation
/// time; `seq` is the event's position in the stream — monotonically
/// increasing, so determinism-gate diffs can name the first divergent
/// event instead of a byte offset.
pub fn jsonl(events: &[TimedEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 72);
    for (seq, te) in events.iter().enumerate() {
        let t = te.at.as_nanos();
        let kind = te.event.kind();
        let _ = write!(out, "{{\"seq\":{seq},\"t_ns\":{t},\"type\":\"{kind}\"");
        match &te.event {
            Event::QueueDepth { link, bytes } => {
                let _ = write!(out, ",\"link\":{link},\"bytes\":{bytes}");
            }
            Event::EcnMark { flow } | Event::CnpSent { flow } | Event::CnpReceived { flow } => {
                let _ = write!(out, ",\"flow\":{flow}");
            }
            Event::RateChange { flow, bps, state } => {
                let _ = write!(
                    out,
                    ",\"flow\":{flow},\"bps\":{bps},\"state\":\"{}\"",
                    state.label()
                );
            }
            Event::PhaseEnter {
                job,
                phase,
                iteration,
            }
            | Event::PhaseExit {
                job,
                phase,
                iteration,
            } => {
                let _ = write!(
                    out,
                    ",\"job\":{job},\"phase\":\"{}\",\"iteration\":{iteration}",
                    phase.label()
                );
            }
            Event::SolverIteration { component, index } => {
                let _ = write!(
                    out,
                    ",\"component\":\"{}\",\"index\":{index}",
                    esc(component)
                );
            }
            Event::GateRelease { job } => {
                let _ = write!(out, ",\"job\":{job}");
            }
            Event::Scenario { name } => {
                let _ = write!(out, ",\"name\":\"{}\"", esc(name));
            }
            Event::JobPath { job, links } => {
                let ls: Vec<String> = links.iter().map(|l| l.to_string()).collect();
                let _ = write!(out, ",\"job\":{job},\"links\":[{}]", ls.join(","));
            }
            Event::LinkCapacity { link, fraction } => {
                let _ = write!(out, ",\"link\":{link},\"fraction\":{fraction}");
            }
            Event::JobDepart { job } => {
                let _ = write!(out, ",\"job\":{job}");
            }
            Event::SpanBegin {
                job,
                kind,
                iteration,
            }
            | Event::SpanEnd {
                job,
                kind,
                iteration,
            } => {
                // `id`/`parent` are derived from (job, kind, iteration);
                // the parser ignores them, keeping round-trips exact.
                let _ = write!(
                    out,
                    ",\"job\":{job},\"kind\":\"{}\",\"iteration\":{iteration},\"id\":{},\"parent\":{}",
                    kind.label(),
                    span_id(*job, *kind, *iteration),
                    span_parent(*job, *kind, *iteration)
                );
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Chrome-trace JSON (the `{"traceEvents": [...]}` envelope).
///
/// Mapping: phase enter/exit become `B`/`E` duration slices on a per-job
/// track; ECN/CNP/solver/gate events become instants (`i`); queue depth and
/// rates become counter tracks (`C`). Every `Scenario` marker opens a fresh
/// pid with a `process_name` metadata record so scenarios stack vertically
/// in the viewer. Timestamps are microseconds of simulation time.
pub fn chrome_trace(events: &[TimedEvent]) -> String {
    let mut records: Vec<String> = Vec::with_capacity(events.len() + 8);
    let mut pid: u32 = 1;
    let mut named_current_pid = false;
    let mut seen_tids: Vec<(u32, u32)> = Vec::new();

    let us = |te: &TimedEvent| format!("{:.3}", te.at.as_nanos() as f64 / 1_000.0);

    for te in events {
        let ts = us(te);
        if !named_current_pid && !matches!(te.event, Event::Scenario { .. }) {
            records.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"simulation\"}}}}"
            ));
            named_current_pid = true;
        }
        let mut thread = |records: &mut Vec<String>, pid: u32, tid: u32| {
            if !seen_tids.contains(&(pid, tid)) {
                seen_tids.push((pid, tid));
                records.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"job/flow {tid}\"}}}}"
                ));
            }
        };
        match &te.event {
            Event::Scenario { name } => {
                pid += 1;
                named_current_pid = true;
                records.push(format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                    esc(name)
                ));
            }
            Event::PhaseEnter {
                job,
                phase,
                iteration,
            } => {
                thread(&mut records, pid, *job);
                records.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"B\",\"ts\":{ts},\"pid\":{pid},\"tid\":{job},\"args\":{{\"iteration\":{iteration}}}}}",
                    phase.label()
                ));
            }
            Event::PhaseExit { job, phase, .. } => {
                thread(&mut records, pid, *job);
                records.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"E\",\"ts\":{ts},\"pid\":{pid},\"tid\":{job}}}",
                    phase.label()
                ));
            }
            Event::EcnMark { flow } | Event::CnpSent { flow } | Event::CnpReceived { flow } => {
                thread(&mut records, pid, *flow);
                records.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"cc\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{pid},\"tid\":{flow},\"s\":\"t\"}}",
                    te.event.kind()
                ));
            }
            Event::RateChange { flow, bps, state } => {
                // Counter tracks are keyed by (pid, name), so rates live on
                // tid 0 like the other counters; a per-flow tid here used
                // to materialize phantom unnamed thread lanes in viewers.
                records.push(format!(
                    "{{\"name\":\"rate_gbps flow{flow}\",\"cat\":\"cc\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\"args\":{{\"{}\":{:.6}}}}}",
                    state.label(),
                    bps / 1e9
                ));
            }
            Event::QueueDepth { link, bytes } => {
                records.push(format!(
                    "{{\"name\":\"queue_depth_bytes link{link}\",\"cat\":\"queue\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\"args\":{{\"bytes\":{bytes:.1}}}}}"
                ));
            }
            Event::SolverIteration { component, index } => {
                records.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"solver\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\"s\":\"p\",\"args\":{{\"index\":{index}}}}}",
                    esc(component)
                ));
            }
            Event::GateRelease { job } => {
                thread(&mut records, pid, *job);
                records.push(format!(
                    "{{\"name\":\"gate_release\",\"cat\":\"gate\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{pid},\"tid\":{job},\"s\":\"t\"}}"
                ));
            }
            Event::JobPath { job, links } => {
                // Static attribution, not a timeline item: record it as an
                // instant carrying the link list in args.
                thread(&mut records, pid, *job);
                let ls: Vec<String> = links.iter().map(|l| l.to_string()).collect();
                records.push(format!(
                    "{{\"name\":\"job_path\",\"cat\":\"topology\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{pid},\"tid\":{job},\"s\":\"t\",\"args\":{{\"links\":[{}]}}}}",
                    ls.join(",")
                ));
            }
            Event::LinkCapacity { link, fraction } => {
                records.push(format!(
                    "{{\"name\":\"link_capacity link{link}\",\"cat\":\"fault\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\"args\":{{\"fraction\":{fraction:.4}}}}}"
                ));
            }
            Event::JobDepart { job } => {
                thread(&mut records, pid, *job);
                records.push(format!(
                    "{{\"name\":\"job_depart\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{pid},\"tid\":{job},\"s\":\"t\"}}"
                ));
            }
            Event::SpanBegin {
                job,
                kind,
                iteration,
            } => {
                thread(&mut records, pid, *job);
                records.push(format!(
                    "{{\"name\":\"{} span\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":{ts},\"pid\":{pid},\"tid\":{job},\"args\":{{\"iteration\":{iteration},\"id\":{},\"parent\":{}}}}}",
                    kind.label(),
                    span_id(*job, *kind, *iteration),
                    span_parent(*job, *kind, *iteration)
                ));
            }
            Event::SpanEnd { job, kind, .. } => {
                thread(&mut records, pid, *job);
                records.push(format!(
                    "{{\"name\":\"{} span\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":{ts},\"pid\":{pid},\"tid\":{job}}}",
                    kind.label()
                ));
            }
        }
    }

    let mut out = String::with_capacity(records.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(r);
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CcState, Phase};
    use simtime::Time;

    fn sample_events() -> Vec<TimedEvent> {
        let t = Time::from_nanos;
        vec![
            TimedEvent {
                at: Time::ZERO,
                event: Event::Scenario {
                    name: "fig1/fair".into(),
                },
            },
            TimedEvent {
                at: t(0),
                event: Event::PhaseEnter {
                    job: 0,
                    phase: Phase::Compute,
                    iteration: 0,
                },
            },
            TimedEvent {
                at: t(1_500),
                event: Event::EcnMark { flow: 0 },
            },
            TimedEvent {
                at: t(2_000),
                event: Event::CnpReceived { flow: 0 },
            },
            TimedEvent {
                at: t(2_000),
                event: Event::RateChange {
                    flow: 0,
                    bps: 25e9,
                    state: CcState::Cut,
                },
            },
            TimedEvent {
                at: t(3_000),
                event: Event::PhaseExit {
                    job: 0,
                    phase: Phase::Compute,
                    iteration: 0,
                },
            },
        ]
    }

    #[test]
    fn jsonl_one_line_per_event_with_types() {
        let out = jsonl(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains("\"type\":\"scenario\""));
        assert!(lines[2].contains("\"type\":\"ecn_mark\""));
        assert!(lines[4].contains("\"state\":\"cut\""));
        // Every line is a self-contained JSON object.
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn jsonl_sequence_numbers_are_dense_and_positional() {
        let out = jsonl(&sample_events());
        for (i, line) in out.lines().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"seq\":{i},")),
                "line {i} lacks its sequence number: {line}"
            );
        }
    }

    #[test]
    fn chrome_trace_has_slices_counters_and_process_names() {
        let out = chrome_trace(&sample_events());
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"ph\":\"B\""));
        assert!(out.contains("\"ph\":\"E\""));
        assert!(out.contains("\"ph\":\"C\""));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("fig1/fair"));
        // ts is microseconds: the 1500 ns mark lands at 1.500.
        assert!(out.contains("\"ts\":1.500"));
    }

    fn span_events() -> Vec<TimedEvent> {
        use crate::event::SpanKind;
        let t = Time::from_nanos;
        let span = |at, job, kind, iteration, begin| TimedEvent {
            at: t(at),
            event: if begin {
                Event::SpanBegin {
                    job,
                    kind,
                    iteration,
                }
            } else {
                Event::SpanEnd {
                    job,
                    kind,
                    iteration,
                }
            },
        };
        vec![
            span(0, 0, SpanKind::Iteration, 0, true),
            span(0, 0, SpanKind::Compute, 0, true),
            span(100, 0, SpanKind::Compute, 0, false),
            span(100, 0, SpanKind::Communicate, 0, true),
            span(250, 0, SpanKind::Communicate, 0, false),
            span(250, 0, SpanKind::Iteration, 0, false),
        ]
    }

    #[test]
    fn jsonl_span_lines_carry_derived_ids_and_parents() {
        use crate::event::{span_id, SpanKind};
        let out = jsonl(&span_events());
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("\"type\":\"span_begin\""));
        assert!(lines[0].contains("\"kind\":\"iteration\""));
        assert!(lines[0].contains("\"parent\":0"));
        let iter_id = span_id(0, SpanKind::Iteration, 0);
        assert!(lines[0].contains(&format!("\"id\":{iter_id}")));
        // Phase spans point at their iteration span.
        assert!(lines[1].contains(&format!("\"parent\":{iter_id}")));
        assert!(lines[5].contains("\"type\":\"span_end\""));
    }

    #[test]
    fn chrome_trace_span_lanes_pair_begin_end_per_tid() {
        let out = chrome_trace(&span_events());
        // B and E counts balance on the job lane, so the viewer's per-tid
        // stack pairing closes every slice.
        let b = out.matches("\"ph\":\"B\"").count();
        let e = out.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 3);
        assert_eq!(b, e);
        assert!(out.contains("\"cat\":\"span\""));
        assert!(out.contains("\"name\":\"iteration span\""));
        // The job lane is a named thread, not a phantom tid.
        assert!(out.contains("\"name\":\"thread_name\""));
    }

    #[test]
    fn chrome_trace_counters_stay_off_job_lanes() {
        let out = chrome_trace(&sample_events());
        // Counter records (rates, queues) all sit on tid 0; named job/flow
        // lanes carry only slices and instants.
        for line in out.lines().filter(|l| l.contains("\"ph\":\"C\"")) {
            assert!(line.contains("\"tid\":0"), "counter on a job lane: {line}");
        }
    }

    #[test]
    fn escaping_handles_quotes_and_newlines() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn exports_are_deterministic() {
        let ev = sample_events();
        assert_eq!(jsonl(&ev), jsonl(&ev));
        assert_eq!(chrome_trace(&ev), chrome_trace(&ev));
    }
}
