//! Structured instrumentation for the simulation stack.
//!
//! The engines in `netsim` are generic over a [`Recorder`]; the default
//! [`NoopRecorder`] monomorphizes every instrumentation site to nothing, so
//! unobserved simulations pay no cost. An observed run plugs in a
//! [`BufferRecorder`], which buffers typed [`Event`]s with simulation
//! timestamps and can then be:
//!
//! - aggregated into a [`MetricsRegistry`] of labeled counters / gauges /
//!   histograms (`ecn_marks_total{flow=0}`, `queue_depth_bytes`, …) and
//!   rendered as a text table;
//! - exported as a JSONL event log ([`export::jsonl`]) or a Chrome-trace
//!   JSON timeline ([`export::chrome_trace`]) viewable in Perfetto or
//!   `chrome://tracing`;
//! - folded into a [`Profiler`] that reports wall-clock and events/sec per
//!   engine/component.
//!
//! Only simulation time ever enters the event stream; wall-clock readings
//! stay in profiler spans, so recorded runs remain bit-deterministic.

pub mod event;
pub mod export;
pub mod live;
pub mod metrics;
pub mod profiler;
pub mod recorder;
pub mod replay;
pub mod span;
pub mod table;

pub use event::{span_id, span_parent, CcState, Event, Phase, SpanKind, TimedEvent};
pub use live::{FlightRing, LiveConfig, LiveHandle, TapRecorder};
pub use metrics::MetricsRegistry;
pub use profiler::Profiler;
pub use recorder::{BufferRecorder, ForkableRecorder, NoopRecorder, Recorder, RemapRecorder};
pub use replay::{parse_jsonl, ReplayError, ReplayErrorKind};
pub use span::SpanTracker;
pub use table::text_table;
