//! Live flight-recorder tap: bounded rings of recent events, mirrored out
//! of running recorders without disturbing them.
//!
//! A [`TapRecorder`] wraps any inner [`Recorder`] and forwards every call
//! unchanged, so the inner recording (and therefore every export, summary,
//! and diff built from it) stays byte-identical whether or not the tap is
//! active. When a live sink is installed ([`install`]), the tap
//! additionally mirrors events — batched, over an [`std::sync::mpsc`]
//! channel — to a [`LiveHandle`] that an observer thread polls while the
//! simulation runs.
//!
//! The handle keeps one [`FlightRing`] per scenario: a bounded,
//! allocation-frugal ring that retains the last N events *per category*
//! (event kind) with deterministic oldest-first eviction, so a rare
//! `link_capacity` change survives next to thousands of `rate_change`
//! samples. [`LiveHandle::snapshot_jsonl`] dumps the rings as JSONL on
//! demand — the black-box flight recording around whatever just happened.
//!
//! Forks minted by [`ForkableRecorder::fork`] have no access to their
//! parent (that is what makes parallel runs byte-identical), so taps
//! discover the sink through a process-global registry: `fork()` on a
//! worker thread picks up the installed sender exactly like the parent
//! did. Per-sender channel FIFO keeps every scenario's mirrored stream in
//! recording order; cross-scenario arrival order is wall-clock dependent,
//! which is why the handle buckets by scenario before anything consumes
//! the batches.

use crate::event::{Event, TimedEvent};
use crate::export;
use crate::recorder::{ForkableRecorder, Recorder};
use simtime::Time;
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Mutex;
use std::time::Duration;

/// One batch fanned in from a tap: the scenario the events belong to and
/// the events recorded since the tap's last flush, in recording order.
pub type Batch = (String, Vec<TimedEvent>);

/// Scenario label used for events recorded before any `Scenario` marker.
pub const UNSCOPED: &str = "run";

#[derive(Clone)]
struct SinkShared {
    tx: Sender<Batch>,
    flush_every: usize,
}

static SINK: Mutex<Option<SinkShared>> = Mutex::new(None);

/// Tuning for an installed live sink.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Ring capacity per event category (per scenario).
    pub per_category: usize,
    /// Tap-side batch size: how many mirrored events accumulate locally
    /// before one channel send. Scenario boundaries always flush.
    pub flush_every: usize,
}

impl Default for LiveConfig {
    fn default() -> LiveConfig {
        LiveConfig {
            per_category: 64,
            flush_every: 256,
        }
    }
}

/// Installs a process-global live sink and returns the receiving handle.
///
/// Taps created (or forked) after this call mirror into the handle.
/// Installing replaces any previous sink; its handle starts reporting
/// disconnection once existing taps drop.
pub fn install(cfg: LiveConfig) -> LiveHandle {
    let (tx, rx) = channel();
    *SINK.lock().unwrap() = Some(SinkShared {
        tx,
        flush_every: cfg.flush_every.max(1),
    });
    LiveHandle {
        rx,
        per_category: cfg.per_category.max(1),
        rings: BTreeMap::new(),
        progress: BTreeMap::new(),
        total: 0,
    }
}

/// Removes the global sink. Existing taps keep their cloned senders and
/// drain harmlessly; new taps are created inactive.
pub fn uninstall() {
    *SINK.lock().unwrap() = None;
}

/// Whether a live sink is currently installed.
pub fn is_installed() -> bool {
    SINK.lock().unwrap().is_some()
}

fn current() -> Option<SinkShared> {
    SINK.lock().unwrap().clone()
}

/// Bounded per-category ring of recent events with deterministic
/// oldest-first eviction.
///
/// Each event kind gets its own lane of `per_category` slots; a global
/// arrival counter orders the merged [`FlightRing::snapshot`] exactly by
/// push order, independent of which lanes evicted.
#[derive(Debug, Clone)]
pub struct FlightRing {
    per_category: usize,
    rings: BTreeMap<&'static str, VecDeque<(u64, TimedEvent)>>,
    pushed: u64,
}

impl FlightRing {
    pub fn new(per_category: usize) -> FlightRing {
        FlightRing {
            per_category: per_category.max(1),
            rings: BTreeMap::new(),
            pushed: 0,
        }
    }

    /// Appends an event, evicting the oldest event of the same category
    /// once its lane is full.
    pub fn push(&mut self, te: TimedEvent) {
        let lane = self.rings.entry(te.event.kind()).or_default();
        if lane.len() == self.per_category {
            lane.pop_front();
        }
        lane.push_back((self.pushed, te));
        self.pushed += 1;
    }

    /// Total events ever pushed (including evicted ones).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Events currently retained across all categories.
    pub fn len(&self) -> usize {
        self.rings.values().map(VecDeque::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.rings.values().all(VecDeque::is_empty)
    }

    /// The retained events, merged back into push order.
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        let mut tagged: Vec<(u64, &TimedEvent)> = self
            .rings
            .values()
            .flat_map(|lane| lane.iter().map(|(n, te)| (*n, te)))
            .collect();
        tagged.sort_by_key(|(n, _)| *n);
        tagged.into_iter().map(|(_, te)| te.clone()).collect()
    }

    /// The retained events as JSONL (the same format as
    /// [`crate::export::jsonl`]).
    pub fn snapshot_jsonl(&self) -> String {
        export::jsonl(&self.snapshot())
    }
}

struct TapState {
    tx: Sender<Batch>,
    flush_every: usize,
    scenario: String,
    pending: Vec<TimedEvent>,
}

impl TapState {
    fn push(&mut self, te: TimedEvent) {
        if let Event::Scenario { name } = &te.event {
            // Ship the previous scenario's tail before relabeling, so a
            // batch never spans a scenario boundary.
            let name = name.clone();
            self.flush();
            self.scenario = name;
        }
        self.pending.push(te);
        if self.pending.len() >= self.flush_every {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // A dropped receiver (sink uninstalled mid-run) just discards.
        let _ = self
            .tx
            .send((self.scenario.clone(), std::mem::take(&mut self.pending)));
    }
}

impl Drop for TapState {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A [`Recorder`] adapter that forwards to `inner` unchanged and, when a
/// live sink is installed, mirrors every event into it.
///
/// The tap is observational only: `inner` sees the identical call
/// sequence, so recordings are byte-identical with the tap on or off.
/// With no sink installed the tap is a plain passthrough that performs no
/// allocation of its own.
pub struct TapRecorder<R> {
    inner: R,
    tap: Option<TapState>,
}

impl<R> TapRecorder<R> {
    /// Wraps `inner`, attaching to the currently installed sink (if any).
    pub fn new(inner: R) -> TapRecorder<R> {
        let tap = current().map(|sink| TapState {
            tx: sink.tx,
            flush_every: sink.flush_every,
            scenario: UNSCOPED.to_string(),
            pending: Vec::new(),
        });
        TapRecorder { inner, tap }
    }

    /// Whether this tap is mirroring into a sink.
    pub fn is_live(&self) -> bool {
        self.tap.is_some()
    }

    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Flushes any mirrored tail and returns the inner recorder.
    pub fn into_inner(mut self) -> R {
        self.tap.take(); // TapState::drop flushes
        self.inner
    }
}

impl<R: Recorder> Recorder for TapRecorder<R> {
    const ENABLED: bool = R::ENABLED;

    fn record(&mut self, at: Time, event: Event) {
        if let Some(tap) = &mut self.tap {
            tap.push(TimedEvent {
                at,
                event: event.clone(),
            });
        }
        self.inner.record(at, event);
    }

    fn count(&mut self, name: &'static str, n: u64) {
        self.inner.count(name, n);
    }

    fn span(&mut self, component: &'static str, wall: Duration, events: u64) {
        self.inner.span(component, wall, events);
    }
}

impl<R: ForkableRecorder> ForkableRecorder for TapRecorder<R>
where
    R::Fork: Send,
{
    type Fork = TapRecorder<R::Fork>;

    /// Forks attach to the sink installed at fork time — forks are minted
    /// on worker threads with no parent access, so the global registry is
    /// the only way a parallel sweep's scenarios reach the live view.
    fn fork() -> TapRecorder<R::Fork> {
        TapRecorder::new(R::fork())
    }

    fn join(&mut self, fork: TapRecorder<R::Fork>) {
        self.inner.join(fork.into_inner());
    }

    fn join_merged(&mut self, forks: Vec<TapRecorder<R::Fork>>) {
        self.inner
            .join_merged(forks.into_iter().map(TapRecorder::into_inner).collect());
    }
}

/// Live progress counters for one scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioProgress {
    /// Mirrored events seen so far.
    pub events: u64,
    /// Largest simulation timestamp seen so far.
    pub last_at: Time,
}

/// Receiving end of the live sink: drains tap batches, maintains
/// per-scenario flight rings and progress counters.
pub struct LiveHandle {
    rx: Receiver<Batch>,
    per_category: usize,
    rings: BTreeMap<String, FlightRing>,
    progress: BTreeMap<String, ScenarioProgress>,
    total: u64,
}

impl LiveHandle {
    fn absorb(&mut self, batch: &Batch) {
        let (scenario, events) = batch;
        let ring = self
            .rings
            .entry(scenario.clone())
            .or_insert_with(|| FlightRing::new(self.per_category));
        let prog = self.progress.entry(scenario.clone()).or_default();
        for te in events {
            ring.push(te.clone());
            prog.events += 1;
            prog.last_at = prog.last_at.max(te.at);
            self.total += 1;
        }
    }

    /// Drains every batch currently queued without blocking. Returns the
    /// drained batches (for downstream consumers such as a watchdog) and
    /// whether every sender is gone and the channel is exhausted.
    pub fn poll(&mut self) -> (Vec<Batch>, bool) {
        let mut out = Vec::new();
        loop {
            match self.rx.try_recv() {
                Ok(batch) => {
                    self.absorb(&batch);
                    out.push(batch);
                }
                Err(TryRecvError::Empty) => return (out, false),
                Err(TryRecvError::Disconnected) => return (out, true),
            }
        }
    }

    /// Like [`LiveHandle::poll`], but blocks up to `wait` for the first
    /// batch — the idle-friendly shape for an observer loop.
    pub fn poll_timeout(&mut self, wait: Duration) -> (Vec<Batch>, bool) {
        match self.rx.recv_timeout(wait) {
            Ok(batch) => {
                self.absorb(&batch);
                let (mut rest, done) = self.poll();
                rest.insert(0, batch);
                (rest, done)
            }
            Err(RecvTimeoutError::Timeout) => (Vec::new(), false),
            Err(RecvTimeoutError::Disconnected) => (Vec::new(), true),
        }
    }

    /// Total mirrored events absorbed so far.
    pub fn total_events(&self) -> u64 {
        self.total
    }

    /// Per-scenario progress counters, keyed by scenario name.
    pub fn progress(&self) -> &BTreeMap<String, ScenarioProgress> {
        &self.progress
    }

    /// Per-scenario flight rings, keyed by scenario name.
    pub fn rings(&self) -> &BTreeMap<String, FlightRing> {
        &self.rings
    }

    /// The flight recording: every scenario's retained events (scenarios
    /// in name order, events in recording order within each). Scenario
    /// marker events live in the rings themselves, so the dump is a valid,
    /// scenario-attributable JSONL stream.
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        let mut out = Vec::new();
        for ring in self.rings.values() {
            out.extend(ring.snapshot());
        }
        out
    }

    /// [`LiveHandle::snapshot`] rendered as JSONL.
    pub fn snapshot_jsonl(&self) -> String {
        export::jsonl(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::BufferRecorder;

    // The sink registry is process-global; tests that install one take
    // this lock so parallel test threads don't steal each other's taps.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn ev(flow: u32) -> Event {
        Event::EcnMark { flow }
    }

    fn scenario(name: &str) -> Event {
        Event::Scenario { name: name.into() }
    }

    #[test]
    fn ring_evicts_per_category_deterministically() {
        let mut ring = FlightRing::new(3);
        for i in 0..10u32 {
            ring.push(TimedEvent {
                at: Time::from_nanos(u64::from(i)),
                event: ev(i),
            });
        }
        ring.push(TimedEvent {
            at: Time::from_nanos(100),
            event: Event::LinkCapacity {
                link: 0,
                fraction: 0.5,
            },
        });
        // The ecn lane kept only the newest 3, but the rare link event
        // survives in its own lane.
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.pushed(), 11);
        let snap = ring.snapshot();
        let flows: Vec<u32> = snap.iter().filter_map(|te| te.event.flow()).collect();
        assert_eq!(flows, vec![7, 8, 9]);
        assert_eq!(snap.last().unwrap().event.kind(), "link_capacity");
        // Snapshot is in push order and stable across calls.
        assert_eq!(ring.snapshot(), ring.snapshot());
    }

    #[test]
    fn tap_without_sink_is_pure_passthrough() {
        let _guard = TEST_LOCK.lock().unwrap();
        uninstall();
        let mut tap = TapRecorder::new(BufferRecorder::new());
        assert!(!tap.is_live());
        tap.record(Time::ZERO, ev(1));
        let inner = tap.into_inner();
        assert_eq!(inner.len(), 1);
    }

    #[test]
    fn tap_mirrors_batches_by_scenario_and_preserves_inner() {
        let _guard = TEST_LOCK.lock().unwrap();
        let mut handle = install(LiveConfig {
            per_category: 8,
            flush_every: 2,
        });
        let mut tap = TapRecorder::new(BufferRecorder::new());
        assert!(tap.is_live());
        tap.record(Time::ZERO, scenario("a"));
        tap.record(Time::from_nanos(1), ev(0));
        tap.record(Time::from_nanos(2), scenario("b"));
        tap.record(Time::from_nanos(3), ev(1));
        let inner = tap.into_inner(); // flushes the tail
        uninstall();

        let (batches, done) = handle.poll();
        assert!(done, "all senders dropped, channel must report exhaustion");
        assert!(batches.iter().all(|(s, _)| s == "a" || s == "b"));
        assert_eq!(handle.total_events(), 4);
        assert_eq!(handle.progress()["a"].events, 2);
        assert_eq!(handle.progress()["b"].events, 2);
        // The mirrored stream per scenario equals the inner recording.
        let mirrored = handle.snapshot();
        assert_eq!(mirrored, inner.events());
    }

    #[test]
    fn forked_taps_attach_to_the_installed_sink() {
        let _guard = TEST_LOCK.lock().unwrap();
        let mut handle = install(LiveConfig::default());
        let mut parent: TapRecorder<BufferRecorder> = TapRecorder::new(BufferRecorder::new());
        let mut fork = <TapRecorder<BufferRecorder> as ForkableRecorder>::fork();
        fork.record(Time::ZERO, scenario("forked"));
        fork.record(Time::from_nanos(5), ev(3));
        parent.join(fork);
        let inner = parent.into_inner();
        uninstall();

        let (_, done) = handle.poll();
        assert!(done);
        assert_eq!(handle.total_events(), 2);
        assert_eq!(inner.len(), 2);
        let jsonl = handle.snapshot_jsonl();
        assert!(jsonl.contains("forked"));
        // The dump parses back as a normal event stream.
        let parsed = crate::replay::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.len(), 2);
    }
}
