//! A small registry of labeled counters, gauges, and histograms, with a
//! text-table summary renderer.
//!
//! Keys are `(metric name, label string)` pairs stored in `BTreeMap`s, so
//! iteration — and therefore rendered output — is deterministic. Labels are
//! free-form `key=value[,key=value]` strings ("" for unlabeled).

use crate::table::text_table;
use std::collections::BTreeMap;

/// Sampled distribution; statistics are computed at render time.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    pub fn observe(&mut self, v: f64) {
        self.samples.push(v);
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Nearest-rank percentile; `p` in [0, 100].
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

/// Labeled counters, gauges, and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<(String, String), u64>,
    gauges: BTreeMap<(String, String), f64>,
    histograms: BTreeMap<(String, String), Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn inc_counter(&mut self, name: &str, label: &str, by: u64) {
        *self
            .counters
            .entry((name.to_string(), label.to_string()))
            .or_insert(0) += by;
    }

    pub fn set_gauge(&mut self, name: &str, label: &str, value: f64) {
        self.gauges
            .insert((name.to_string(), label.to_string()), value);
    }

    pub fn observe(&mut self, name: &str, label: &str, value: f64) {
        self.histograms
            .entry((name.to_string(), label.to_string()))
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters
            .get(&(name.to_string(), label.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of a counter across all label values.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| v)
            .sum()
    }

    pub fn gauge(&self, name: &str, label: &str) -> Option<f64> {
        self.gauges
            .get(&(name.to_string(), label.to_string()))
            .copied()
    }

    pub fn histogram(&self, name: &str, label: &str) -> Option<&Histogram> {
        self.histograms.get(&(name.to_string(), label.to_string()))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders every metric as a fixed-width table, counters first, then
    /// gauges, then histograms (count/mean/p50/p99/max).
    pub fn render(&self) -> String {
        fn series(name: &str, label: &str) -> String {
            if label.is_empty() {
                name.to_string()
            } else {
                format!("{name}{{{label}}}")
            }
        }
        let mut rows = vec![vec![
            "metric".to_string(),
            "type".to_string(),
            "value".to_string(),
        ]];
        for ((name, label), v) in &self.counters {
            rows.push(vec![
                series(name, label),
                "counter".to_string(),
                v.to_string(),
            ]);
        }
        for ((name, label), v) in &self.gauges {
            rows.push(vec![
                series(name, label),
                "gauge".to_string(),
                format!("{v:.3}"),
            ]);
        }
        for ((name, label), h) in &self.histograms {
            rows.push(vec![
                series(name, label),
                "histogram".to_string(),
                format!(
                    "n={} mean={:.3} p50={:.3} p99={:.3} max={:.3}",
                    h.count(),
                    h.mean(),
                    h.percentile(50.0),
                    h.percentile(99.0),
                    h.max()
                ),
            ]);
        }
        text_table(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label() {
        let mut m = MetricsRegistry::new();
        m.inc_counter("ecn_marks_total", "flow=0", 2);
        m.inc_counter("ecn_marks_total", "flow=0", 3);
        m.inc_counter("ecn_marks_total", "flow=1", 1);
        assert_eq!(m.counter("ecn_marks_total", "flow=0"), 5);
        assert_eq!(m.counter_total("ecn_marks_total"), 6);
        assert_eq!(m.counter("missing", ""), 0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100.0);
        assert_eq!(h.percentile(50.0), 3.0);
        assert!(h.mean() > 3.0);
    }

    #[test]
    fn render_is_deterministic_and_labeled() {
        let mut m = MetricsRegistry::new();
        m.inc_counter("cnp_total", "flow=1", 4);
        m.set_gauge("queue_depth_bytes", "link=0", 1234.5);
        m.observe("rate_gbps_hist", "flow=0", 25.0);
        let a = m.render();
        let b = m.render();
        assert_eq!(a, b);
        assert!(a.contains("cnp_total{flow=1}"));
        assert!(a.contains("queue_depth_bytes{link=0}"));
        assert!(a.contains("histogram"));
    }
}
