//! Wall-clock profiler: where does simulation time actually go?
//!
//! Sections come from two sources: explicit [`Profiler::time`] scopes around
//! CLI-level stages, and engine spans absorbed from a [`BufferRecorder`]
//! (each engine reports wall-clock plus how many steps/events it processed,
//! which yields an events-per-second figure per component).

use crate::recorder::BufferRecorder;
use crate::table::text_table;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, Default)]
struct Section {
    wall: Duration,
    events: u64,
    calls: u64,
}

/// Accumulates named wall-clock sections and renders a hot-path breakdown.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    sections: BTreeMap<String, Section>,
}

impl Profiler {
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Times `f` and charges it to `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add(name, t0.elapsed(), 0, 1);
        out
    }

    /// Adds an externally measured span.
    pub fn add_span(&mut self, name: &str, wall: Duration, events: u64) {
        self.add(name, wall, events, 1);
    }

    /// Pulls every engine span out of a recorder's buffer.
    pub fn absorb(&mut self, rec: &BufferRecorder) {
        for (component, s) in rec.spans() {
            self.add(component, s.wall, s.events, s.calls);
        }
    }

    fn add(&mut self, name: &str, wall: Duration, events: u64, calls: u64) {
        let s = self.sections.entry(name.to_string()).or_default();
        s.wall += wall;
        s.events += events;
        s.calls += calls;
    }

    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Total wall-clock across all sections.
    pub fn total_wall(&self) -> Duration {
        self.sections.values().map(|s| s.wall).sum()
    }

    /// Renders sections sorted by wall-clock, hottest first, with
    /// events/sec where a section reported event counts.
    pub fn render(&self) -> String {
        let total = self.total_wall().as_secs_f64().max(1e-12);
        let mut entries: Vec<(&String, &Section)> = self.sections.iter().collect();
        entries.sort_by(|a, b| b.1.wall.cmp(&a.1.wall).then_with(|| a.0.cmp(b.0)));
        let mut rows = vec![vec![
            "section".to_string(),
            "wall".to_string(),
            "share".to_string(),
            "calls".to_string(),
            "events".to_string(),
            "events/sec".to_string(),
        ]];
        for (name, s) in entries {
            let secs = s.wall.as_secs_f64();
            let rate = if s.events > 0 && secs > 0.0 {
                format!("{:.0}", s.events as f64 / secs)
            } else {
                "-".to_string()
            };
            rows.push(vec![
                name.clone(),
                format!("{:.3?}", s.wall),
                format!("{:.1}%", 100.0 * secs / total),
                s.calls.to_string(),
                if s.events > 0 {
                    s.events.to_string()
                } else {
                    "-".to_string()
                },
                rate,
            ]);
        }
        text_table(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn time_charges_a_section() {
        let mut p = Profiler::new();
        let v = p.time("stage", || 41 + 1);
        assert_eq!(v, 42);
        assert!(!p.is_empty());
        assert!(p.render().contains("stage"));
    }

    #[test]
    fn absorb_pulls_engine_spans() {
        let mut rec = BufferRecorder::new();
        rec.span("netsim.rate", Duration::from_millis(10), 2000);
        let mut p = Profiler::new();
        p.absorb(&rec);
        let out = p.render();
        assert!(out.contains("netsim.rate"));
        assert!(out.contains("2000"));
        // 2000 events over 10 ms → 200k events/sec.
        assert!(out.contains("200000"));
    }

    #[test]
    fn render_sorts_hottest_first() {
        let mut p = Profiler::new();
        p.add_span("cold", Duration::from_millis(1), 0);
        p.add_span("hot", Duration::from_millis(100), 0);
        let out = p.render();
        let hot = out.find("hot").unwrap();
        let cold = out.find("cold").unwrap();
        assert!(hot < cold);
    }
}
