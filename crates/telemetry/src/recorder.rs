//! The [`Recorder`] trait and its two implementations: a zero-cost no-op
//! and an in-memory buffer.

use crate::event::{Event, TimedEvent};
use crate::metrics::MetricsRegistry;
use simtime::Time;
use std::collections::BTreeMap;
use std::time::Duration;

/// Sink for instrumentation emitted by the simulators.
///
/// Engines are generic over `R: Recorder` and guard every instrumentation
/// site with `if R::ENABLED { ... }`. For [`NoopRecorder`] that constant is
/// `false`, so the guarded code — including any argument computation and
/// wall-clock reads — is dead and compiles away; benches on the default
/// engines measure the same hot loop as before instrumentation existed.
pub trait Recorder {
    /// Whether this recorder observes anything. Engines skip instrumentation
    /// blocks entirely when this is `false`.
    const ENABLED: bool = true;

    /// Records one event at simulation time `at`.
    fn record(&mut self, at: Time, event: Event);

    /// Bumps a named free-form counter (not tied to a simulation instant).
    fn count(&mut self, _name: &'static str, _n: u64) {}

    /// Reports wall-clock spent in a component alongside how many
    /// simulation events/steps it processed. Wall-clock never enters the
    /// event stream — only spans — so recordings stay deterministic.
    fn span(&mut self, _component: &'static str, _wall: Duration, _events: u64) {}
}

/// A [`Recorder`] that can hand out independent per-scenario recorders
/// ("forks") and later absorb them back, in caller-chosen order.
///
/// This is what makes parallel experiment runs byte-identical to serial
/// ones: each independent scenario records into its own fork on its own
/// thread, and the driver joins the forks back in scenario-index order, so
/// the merged stream is exactly the stream a serial run would have
/// produced. A fork is created without access to the parent (it starts
/// empty), which lets worker threads mint forks locally without sharing
/// the parent across threads.
pub trait ForkableRecorder: Recorder {
    /// The per-scenario recorder type. [`Recorder::ENABLED`] of the fork
    /// must match the parent's so engines compile instrumentation in or
    /// out consistently.
    type Fork: Recorder + Send;

    /// Mints a fresh, empty fork.
    fn fork() -> Self::Fork;

    /// Absorbs a fork's recording, appending after everything already
    /// recorded here.
    fn join(&mut self, fork: Self::Fork);
}

/// Forwarding impl mirroring the `&mut R` [`Recorder`] impl.
impl<R: ForkableRecorder> ForkableRecorder for &mut R {
    type Fork = R::Fork;

    fn fork() -> R::Fork {
        R::fork()
    }

    fn join(&mut self, fork: R::Fork) {
        (**self).join(fork);
    }
}

/// The default recorder: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _at: Time, _event: Event) {}
}

impl ForkableRecorder for NoopRecorder {
    type Fork = NoopRecorder;

    #[inline(always)]
    fn fork() -> NoopRecorder {
        NoopRecorder
    }

    #[inline(always)]
    fn join(&mut self, _fork: NoopRecorder) {}
}

/// Forwarding impl so one recorder can be lent to several simulators in
/// sequence (`&mut rec` per scenario) while the caller keeps ownership.
impl<R: Recorder> Recorder for &mut R {
    const ENABLED: bool = R::ENABLED;

    #[inline]
    fn record(&mut self, at: Time, event: Event) {
        (**self).record(at, event);
    }

    #[inline]
    fn count(&mut self, name: &'static str, n: u64) {
        (**self).count(name, n);
    }

    #[inline]
    fn span(&mut self, component: &'static str, wall: Duration, events: u64) {
        (**self).span(component, wall, events);
    }
}

/// Wall-clock and event-count totals for one instrumented component.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    pub wall: Duration,
    pub events: u64,
    pub calls: u64,
}

/// Buffers everything in memory for post-run export and aggregation.
#[derive(Debug, Clone, Default)]
pub struct BufferRecorder {
    events: Vec<TimedEvent>,
    counts: BTreeMap<&'static str, u64>,
    spans: BTreeMap<&'static str, SpanStats>,
}

impl BufferRecorder {
    pub fn new() -> BufferRecorder {
        BufferRecorder::default()
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Free-form counters accumulated via [`Recorder::count`].
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Per-component wall-clock spans accumulated via [`Recorder::span`].
    pub fn spans(&self) -> &BTreeMap<&'static str, SpanStats> {
        &self.spans
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn clear(&mut self) {
        self.events.clear();
        self.counts.clear();
        self.spans.clear();
    }

    /// Appends `other`'s events after this recorder's and folds its
    /// counters and spans in. The event order is exactly "everything
    /// already here, then everything in `other`" — the property
    /// [`ForkableRecorder`] joins rely on.
    pub fn merge(&mut self, other: BufferRecorder) {
        self.events.extend(other.events);
        for (name, n) in other.counts {
            *self.counts.entry(name).or_insert(0) += n;
        }
        for (component, s) in other.spans {
            let dst = self.spans.entry(component).or_default();
            dst.wall += s.wall;
            dst.events += s.events;
            dst.calls += s.calls;
        }
    }

    /// Aggregates the buffered events into labeled metrics.
    ///
    /// Counters are per-flow/per-job where the event carries an index
    /// (`ecn_marks_total{flow=0}`); queue depth lands in both a gauge (last
    /// observed value) and a histogram of all samples.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        for te in &self.events {
            match &te.event {
                Event::QueueDepth { link, bytes } => {
                    let label = format!("link={link}");
                    m.set_gauge("queue_depth_bytes", &label, *bytes);
                    m.observe("queue_depth_bytes_hist", &label, *bytes);
                }
                Event::EcnMark { flow } => {
                    m.inc_counter("ecn_marks_total", &format!("flow={flow}"), 1);
                }
                Event::CnpSent { flow } => {
                    m.inc_counter("cnp_sent_total", &format!("flow={flow}"), 1);
                }
                Event::CnpReceived { flow } => {
                    m.inc_counter("cnp_total", &format!("flow={flow}"), 1);
                }
                Event::RateChange { flow, bps, state } => {
                    let label = format!("flow={flow}");
                    m.inc_counter(
                        "rate_changes_total",
                        &format!("flow={flow},state={}", state.label()),
                        1,
                    );
                    m.set_gauge("rate_gbps", &label, bps / 1e9);
                    m.observe("rate_gbps_hist", &label, bps / 1e9);
                }
                Event::PhaseEnter { job, phase, .. } => {
                    m.inc_counter(
                        "phase_enters_total",
                        &format!("job={job},phase={}", phase.label()),
                        1,
                    );
                }
                Event::PhaseExit { job, phase, .. } => {
                    m.inc_counter(
                        "phase_exits_total",
                        &format!("job={job},phase={}", phase.label()),
                        1,
                    );
                }
                Event::SolverIteration { component, .. } => {
                    m.inc_counter(
                        "solver_iterations_total",
                        &format!("component={component}"),
                        1,
                    );
                }
                Event::GateRelease { job } => {
                    m.inc_counter("gate_releases_total", &format!("job={job}"), 1);
                }
                Event::Scenario { .. } => {
                    m.inc_counter("scenarios_total", "", 1);
                }
                Event::JobPath { job, .. } => {
                    m.inc_counter("job_paths_total", &format!("job={job}"), 1);
                }
                Event::LinkCapacity { link, fraction } => {
                    let label = format!("link={link}");
                    m.inc_counter("link_capacity_changes_total", &label, 1);
                    m.set_gauge("link_capacity_fraction", &label, *fraction);
                }
                Event::JobDepart { job } => {
                    m.inc_counter("job_departs_total", &format!("job={job}"), 1);
                }
                // Spans are counted on begin only; ends pair with them.
                Event::SpanBegin { job, kind, .. } => {
                    m.inc_counter(
                        "spans_total",
                        &format!("job={job},kind={}", kind.label()),
                        1,
                    );
                }
                Event::SpanEnd { .. } => {}
            }
        }
        for (name, n) in &self.counts {
            m.inc_counter(name, "", *n);
        }
        m
    }
}

impl ForkableRecorder for BufferRecorder {
    type Fork = BufferRecorder;

    fn fork() -> BufferRecorder {
        BufferRecorder::new()
    }

    fn join(&mut self, fork: BufferRecorder) {
        self.merge(fork);
    }
}

impl Recorder for BufferRecorder {
    fn record(&mut self, at: Time, event: Event) {
        self.events.push(TimedEvent { at, event });
    }

    fn count(&mut self, name: &'static str, n: u64) {
        *self.counts.entry(name).or_insert(0) += n;
    }

    fn span(&mut self, component: &'static str, wall: Duration, events: u64) {
        let s = self.spans.entry(component).or_default();
        s.wall += wall;
        s.events += events;
        s.calls += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CcState;

    #[test]
    fn noop_is_disabled_through_references() {
        // The forwarding impl must preserve ENABLED in both directions;
        // const blocks make these compile-time checks.
        const {
            assert!(!NoopRecorder::ENABLED);
            assert!(!<&mut NoopRecorder as Recorder>::ENABLED);
            assert!(BufferRecorder::ENABLED);
            assert!(<&mut BufferRecorder as Recorder>::ENABLED);
        }
    }

    #[test]
    fn buffer_accumulates_events_counts_and_spans() {
        let mut rec = BufferRecorder::new();
        {
            // Exercise the forwarding impl the engines actually use.
            let lent: &mut BufferRecorder = &mut rec;
            lent.record(Time::ZERO, Event::EcnMark { flow: 0 });
            lent.record(Time::from_nanos(5), Event::CnpReceived { flow: 0 });
            lent.count("steps", 3);
            lent.count("steps", 2);
            lent.span("rate", Duration::from_millis(2), 10);
            lent.span("rate", Duration::from_millis(3), 5);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.counts()["steps"], 5);
        let s = rec.spans()["rate"];
        assert_eq!(s.wall, Duration::from_millis(5));
        assert_eq!(s.events, 15);
        assert_eq!(s.calls, 2);
    }

    /// Joining forks in index order reproduces the serial recording
    /// byte-for-byte: same events in the same order, same counter and
    /// span totals.
    #[test]
    fn fork_join_equals_serial_recording() {
        let record_scenario = |rec: &mut BufferRecorder, flow: u32| {
            rec.record(Time::ZERO, Event::EcnMark { flow });
            rec.record(Time::from_nanos(7), Event::CnpReceived { flow });
            rec.count("steps", u64::from(flow) + 1);
            rec.span("engine", Duration::from_millis(1), 4);
        };

        let mut serial = BufferRecorder::new();
        record_scenario(&mut serial, 0);
        record_scenario(&mut serial, 1);

        let mut parent = BufferRecorder::new();
        let mut forks: Vec<BufferRecorder> = (0..2).map(|_| BufferRecorder::fork()).collect();
        // Record in reverse to prove the join order, not the recording
        // order, decides the merged stream.
        record_scenario(&mut forks[1], 1);
        record_scenario(&mut forks[0], 0);
        for fork in forks {
            parent.join(fork);
        }

        assert_eq!(parent.events(), serial.events());
        assert_eq!(parent.counts(), serial.counts());
        assert_eq!(parent.spans(), serial.spans());
    }

    #[test]
    fn metrics_aggregation_counts_by_label() {
        let mut rec = BufferRecorder::new();
        for _ in 0..3 {
            rec.record(Time::ZERO, Event::EcnMark { flow: 1 });
        }
        rec.record(Time::ZERO, Event::EcnMark { flow: 2 });
        rec.record(
            Time::ZERO,
            Event::RateChange {
                flow: 1,
                bps: 25e9,
                state: CcState::Cut,
            },
        );
        let m = rec.metrics();
        assert_eq!(m.counter("ecn_marks_total", "flow=1"), 3);
        assert_eq!(m.counter("ecn_marks_total", "flow=2"), 1);
        assert_eq!(m.counter("rate_changes_total", "flow=1,state=cut"), 1);
    }
}
