//! The [`Recorder`] trait and its two implementations: a zero-cost no-op
//! and an in-memory buffer.

use crate::event::{Event, TimedEvent};
use crate::metrics::MetricsRegistry;
use simtime::Time;
use std::collections::BTreeMap;
use std::time::Duration;

/// Sink for instrumentation emitted by the simulators.
///
/// Engines are generic over `R: Recorder` and guard every instrumentation
/// site with `if R::ENABLED { ... }`. For [`NoopRecorder`] that constant is
/// `false`, so the guarded code — including any argument computation and
/// wall-clock reads — is dead and compiles away; benches on the default
/// engines measure the same hot loop as before instrumentation existed.
pub trait Recorder {
    /// Whether this recorder observes anything. Engines skip instrumentation
    /// blocks entirely when this is `false`.
    const ENABLED: bool = true;

    /// Records one event at simulation time `at`.
    fn record(&mut self, at: Time, event: Event);

    /// Bumps a named free-form counter (not tied to a simulation instant).
    fn count(&mut self, _name: &'static str, _n: u64) {}

    /// Reports wall-clock spent in a component alongside how many
    /// simulation events/steps it processed. Wall-clock never enters the
    /// event stream — only spans — so recordings stay deterministic.
    fn span(&mut self, _component: &'static str, _wall: Duration, _events: u64) {}
}

/// A [`Recorder`] that can hand out independent per-scenario recorders
/// ("forks") and later absorb them back, in caller-chosen order.
///
/// This is what makes parallel experiment runs byte-identical to serial
/// ones: each independent scenario records into its own fork on its own
/// thread, and the driver joins the forks back in scenario-index order, so
/// the merged stream is exactly the stream a serial run would have
/// produced. A fork is created without access to the parent (it starts
/// empty), which lets worker threads mint forks locally without sharing
/// the parent across threads.
pub trait ForkableRecorder: Recorder {
    /// The per-scenario recorder type. [`Recorder::ENABLED`] of the fork
    /// must match the parent's so engines compile instrumentation in or
    /// out consistently.
    type Fork: Recorder + Send;

    /// Mints a fresh, empty fork.
    fn fork() -> Self::Fork;

    /// Absorbs a fork's recording, appending after everything already
    /// recorded here.
    fn join(&mut self, fork: Self::Fork);

    /// Absorbs several forks as one *time-ordered* merge: events from all
    /// forks are interleaved by `(time, fork index, within-fork order)`
    /// before being appended here.
    ///
    /// This is the join shards use. Per-shard recordings are each
    /// internally ordered but overlap in simulation time, so joining them
    /// back-to-back (the plain [`ForkableRecorder::join`], right for
    /// *scenario*-indexed forks) would leave the merged stream unsorted.
    /// The merge key is a pure function of the recordings and the caller's
    /// fork order — never of thread scheduling — so the merged stream is
    /// byte-identical at any worker-thread count.
    ///
    /// The default implementation joins in order (correct for recorders
    /// that don't buffer a timeline); [`BufferRecorder`] overrides it with
    /// the actual ordered merge.
    fn join_merged(&mut self, forks: Vec<Self::Fork>) {
        for fork in forks {
            self.join(fork);
        }
    }
}

/// Forwarding impl mirroring the `&mut R` [`Recorder`] impl.
impl<R: ForkableRecorder> ForkableRecorder for &mut R {
    type Fork = R::Fork;

    fn fork() -> R::Fork {
        R::fork()
    }

    fn join(&mut self, fork: R::Fork) {
        (**self).join(fork);
    }

    fn join_merged(&mut self, forks: Vec<R::Fork>) {
        (**self).join_merged(forks);
    }
}

/// The default recorder: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _at: Time, _event: Event) {}
}

impl ForkableRecorder for NoopRecorder {
    type Fork = NoopRecorder;

    #[inline(always)]
    fn fork() -> NoopRecorder {
        NoopRecorder
    }

    #[inline(always)]
    fn join(&mut self, _fork: NoopRecorder) {}
}

/// Forwarding impl so one recorder can be lent to several simulators in
/// sequence (`&mut rec` per scenario) while the caller keeps ownership.
impl<R: Recorder> Recorder for &mut R {
    const ENABLED: bool = R::ENABLED;

    #[inline]
    fn record(&mut self, at: Time, event: Event) {
        (**self).record(at, event);
    }

    #[inline]
    fn count(&mut self, name: &'static str, n: u64) {
        (**self).count(name, n);
    }

    #[inline]
    fn span(&mut self, component: &'static str, wall: Duration, events: u64) {
        (**self).span(component, wall, events);
    }
}

/// Wall-clock and event-count totals for one instrumented component.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    pub wall: Duration,
    pub events: u64,
    pub calls: u64,
}

/// Buffers everything in memory for post-run export and aggregation.
#[derive(Debug, Clone, Default)]
pub struct BufferRecorder {
    events: Vec<TimedEvent>,
    counts: BTreeMap<&'static str, u64>,
    spans: BTreeMap<&'static str, SpanStats>,
}

impl BufferRecorder {
    pub fn new() -> BufferRecorder {
        BufferRecorder::default()
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Free-form counters accumulated via [`Recorder::count`].
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Per-component wall-clock spans accumulated via [`Recorder::span`].
    pub fn spans(&self) -> &BTreeMap<&'static str, SpanStats> {
        &self.spans
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn clear(&mut self) {
        self.events.clear();
        self.counts.clear();
        self.spans.clear();
    }

    /// Appends `other`'s events after this recorder's and folds its
    /// counters and spans in. The event order is exactly "everything
    /// already here, then everything in `other`" — the property
    /// [`ForkableRecorder`] joins rely on.
    pub fn merge(&mut self, other: BufferRecorder) {
        self.events.extend(other.events);
        for (name, n) in other.counts {
            *self.counts.entry(name).or_insert(0) += n;
        }
        for (component, s) in other.spans {
            let dst = self.spans.entry(component).or_default();
            dst.wall += s.wall;
            dst.events += s.events;
            dst.calls += s.calls;
        }
    }

    /// Aggregates the buffered events into labeled metrics.
    ///
    /// Counters are per-flow/per-job where the event carries an index
    /// (`ecn_marks_total{flow=0}`); queue depth lands in both a gauge (last
    /// observed value) and a histogram of all samples.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        for te in &self.events {
            match &te.event {
                Event::QueueDepth { link, bytes } => {
                    let label = format!("link={link}");
                    m.set_gauge("queue_depth_bytes", &label, *bytes);
                    m.observe("queue_depth_bytes_hist", &label, *bytes);
                }
                Event::EcnMark { flow } => {
                    m.inc_counter("ecn_marks_total", &format!("flow={flow}"), 1);
                }
                Event::CnpSent { flow } => {
                    m.inc_counter("cnp_sent_total", &format!("flow={flow}"), 1);
                }
                Event::CnpReceived { flow } => {
                    m.inc_counter("cnp_total", &format!("flow={flow}"), 1);
                }
                Event::RateChange { flow, bps, state } => {
                    let label = format!("flow={flow}");
                    m.inc_counter(
                        "rate_changes_total",
                        &format!("flow={flow},state={}", state.label()),
                        1,
                    );
                    m.set_gauge("rate_gbps", &label, bps / 1e9);
                    m.observe("rate_gbps_hist", &label, bps / 1e9);
                }
                Event::PhaseEnter { job, phase, .. } => {
                    m.inc_counter(
                        "phase_enters_total",
                        &format!("job={job},phase={}", phase.label()),
                        1,
                    );
                }
                Event::PhaseExit { job, phase, .. } => {
                    m.inc_counter(
                        "phase_exits_total",
                        &format!("job={job},phase={}", phase.label()),
                        1,
                    );
                }
                Event::SolverIteration { component, .. } => {
                    m.inc_counter(
                        "solver_iterations_total",
                        &format!("component={component}"),
                        1,
                    );
                }
                Event::GateRelease { job } => {
                    m.inc_counter("gate_releases_total", &format!("job={job}"), 1);
                }
                Event::Scenario { .. } => {
                    m.inc_counter("scenarios_total", "", 1);
                }
                Event::JobPath { job, .. } => {
                    m.inc_counter("job_paths_total", &format!("job={job}"), 1);
                }
                Event::LinkCapacity { link, fraction } => {
                    let label = format!("link={link}");
                    m.inc_counter("link_capacity_changes_total", &label, 1);
                    m.set_gauge("link_capacity_fraction", &label, *fraction);
                }
                Event::JobDepart { job } => {
                    m.inc_counter("job_departs_total", &format!("job={job}"), 1);
                }
                // Spans are counted on begin only; ends pair with them.
                Event::SpanBegin { job, kind, .. } => {
                    m.inc_counter(
                        "spans_total",
                        &format!("job={job},kind={}", kind.label()),
                        1,
                    );
                }
                Event::SpanEnd { .. } => {}
            }
        }
        for (name, n) in &self.counts {
            m.inc_counter(name, "", *n);
        }
        m
    }
}

impl ForkableRecorder for BufferRecorder {
    type Fork = BufferRecorder;

    fn fork() -> BufferRecorder {
        BufferRecorder::new()
    }

    fn join(&mut self, fork: BufferRecorder) {
        self.merge(fork);
    }

    /// Interleaves the forks' events by `(time, fork index, within-fork
    /// order)` and appends the result after everything already recorded
    /// here. Counters and spans fold in unordered (they are commutative
    /// totals). Concatenating in fork order and then stable-sorting by
    /// timestamp realizes exactly that three-part key.
    fn join_merged(&mut self, forks: Vec<BufferRecorder>) {
        let total = forks.iter().map(|f| f.events.len()).sum();
        let mut merged: Vec<TimedEvent> = Vec::with_capacity(total);
        for fork in forks {
            merged.extend(fork.events);
            for (name, n) in fork.counts {
                *self.counts.entry(name).or_insert(0) += n;
            }
            for (component, s) in fork.spans {
                let dst = self.spans.entry(component).or_default();
                dst.wall += s.wall;
                dst.events += s.events;
                dst.calls += s.calls;
            }
        }
        merged.sort_by_key(|te| te.at); // stable: ties keep fork order
        self.events.extend(merged);
    }
}

impl Recorder for BufferRecorder {
    fn record(&mut self, at: Time, event: Event) {
        self.events.push(TimedEvent { at, event });
    }

    fn count(&mut self, name: &'static str, n: u64) {
        *self.counts.entry(name).or_insert(0) += n;
    }

    fn span(&mut self, component: &'static str, wall: Duration, events: u64) {
        let s = self.spans.entry(component).or_default();
        s.wall += wall;
        s.events += events;
        s.calls += 1;
    }
}

/// A [`Recorder`] adapter that rewrites shard-local job/flow/link indices
/// to their global values before forwarding to `inner`.
///
/// A shard simulates a subset of a scenario's jobs, so its engine numbers
/// jobs (and their flows — every engine here runs one flow per job under
/// the same index) `0..k` and, for the single-bottleneck engines, labels
/// the bottleneck `link: 0`. Wrapping the shard's fork in a
/// `RemapRecorder` makes the recording indistinguishable from one taken by
/// a global engine, which is what lets the merged stream stay byte-stable
/// regardless of how jobs were grouped into shards.
pub struct RemapRecorder<F> {
    inner: F,
    /// `job_map[local]` = global job (and flow) index.
    job_map: Vec<u32>,
    /// `link_map[local]` = global link id; `None` = identity (the engine
    /// already emits global link ids, as the fluid engine does when run on
    /// the full topology).
    link_map: Option<Vec<u32>>,
}

impl<F> RemapRecorder<F> {
    /// Wraps `inner` with the given index maps. Out-of-range indices are a
    /// shard-construction bug and panic on first use.
    pub fn new(inner: F, job_map: Vec<u32>, link_map: Option<Vec<u32>>) -> RemapRecorder<F> {
        RemapRecorder {
            inner,
            job_map,
            link_map,
        }
    }

    /// Returns the wrapped recorder (typically a fork, recovered for
    /// [`ForkableRecorder::join_merged`]).
    pub fn into_inner(self) -> F {
        self.inner
    }

    #[inline]
    fn map_job(&self, local: u32) -> u32 {
        self.job_map[local as usize]
    }

    #[inline]
    fn map_link(&self, local: u32) -> u32 {
        match &self.link_map {
            Some(m) => m[local as usize],
            None => local,
        }
    }
}

impl<F: Recorder> Recorder for RemapRecorder<F> {
    const ENABLED: bool = F::ENABLED;

    fn record(&mut self, at: Time, event: Event) {
        let event = match event {
            Event::QueueDepth { link, bytes } => Event::QueueDepth {
                link: self.map_link(link),
                bytes,
            },
            Event::EcnMark { flow } => Event::EcnMark {
                flow: self.map_job(flow),
            },
            Event::CnpSent { flow } => Event::CnpSent {
                flow: self.map_job(flow),
            },
            Event::CnpReceived { flow } => Event::CnpReceived {
                flow: self.map_job(flow),
            },
            Event::RateChange { flow, bps, state } => Event::RateChange {
                flow: self.map_job(flow),
                bps,
                state,
            },
            Event::PhaseEnter {
                job,
                phase,
                iteration,
            } => Event::PhaseEnter {
                job: self.map_job(job),
                phase,
                iteration,
            },
            Event::PhaseExit {
                job,
                phase,
                iteration,
            } => Event::PhaseExit {
                job: self.map_job(job),
                phase,
                iteration,
            },
            Event::GateRelease { job } => Event::GateRelease {
                job: self.map_job(job),
            },
            Event::JobPath { job, links } => Event::JobPath {
                job: self.map_job(job),
                links: links.into_iter().map(|l| self.map_link(l)).collect(),
            },
            Event::LinkCapacity { link, fraction } => Event::LinkCapacity {
                link: self.map_link(link),
                fraction,
            },
            Event::JobDepart { job } => Event::JobDepart {
                job: self.map_job(job),
            },
            Event::SpanBegin {
                job,
                kind,
                iteration,
            } => Event::SpanBegin {
                job: self.map_job(job),
                kind,
                iteration,
            },
            Event::SpanEnd {
                job,
                kind,
                iteration,
            } => Event::SpanEnd {
                job: self.map_job(job),
                kind,
                iteration,
            },
            // Not indexed by job/flow/link: pass through untouched.
            e @ (Event::SolverIteration { .. } | Event::Scenario { .. }) => e,
        };
        self.inner.record(at, event);
    }

    fn count(&mut self, name: &'static str, n: u64) {
        self.inner.count(name, n);
    }

    fn span(&mut self, component: &'static str, wall: Duration, events: u64) {
        self.inner.span(component, wall, events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CcState;

    #[test]
    fn noop_is_disabled_through_references() {
        // The forwarding impl must preserve ENABLED in both directions;
        // const blocks make these compile-time checks.
        const {
            assert!(!NoopRecorder::ENABLED);
            assert!(!<&mut NoopRecorder as Recorder>::ENABLED);
            assert!(BufferRecorder::ENABLED);
            assert!(<&mut BufferRecorder as Recorder>::ENABLED);
        }
    }

    #[test]
    fn buffer_accumulates_events_counts_and_spans() {
        let mut rec = BufferRecorder::new();
        {
            // Exercise the forwarding impl the engines actually use.
            let lent: &mut BufferRecorder = &mut rec;
            lent.record(Time::ZERO, Event::EcnMark { flow: 0 });
            lent.record(Time::from_nanos(5), Event::CnpReceived { flow: 0 });
            lent.count("steps", 3);
            lent.count("steps", 2);
            lent.span("rate", Duration::from_millis(2), 10);
            lent.span("rate", Duration::from_millis(3), 5);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.counts()["steps"], 5);
        let s = rec.spans()["rate"];
        assert_eq!(s.wall, Duration::from_millis(5));
        assert_eq!(s.events, 15);
        assert_eq!(s.calls, 2);
    }

    /// Joining forks in index order reproduces the serial recording
    /// byte-for-byte: same events in the same order, same counter and
    /// span totals.
    #[test]
    fn fork_join_equals_serial_recording() {
        let record_scenario = |rec: &mut BufferRecorder, flow: u32| {
            rec.record(Time::ZERO, Event::EcnMark { flow });
            rec.record(Time::from_nanos(7), Event::CnpReceived { flow });
            rec.count("steps", u64::from(flow) + 1);
            rec.span("engine", Duration::from_millis(1), 4);
        };

        let mut serial = BufferRecorder::new();
        record_scenario(&mut serial, 0);
        record_scenario(&mut serial, 1);

        let mut parent = BufferRecorder::new();
        let mut forks: Vec<BufferRecorder> = (0..2).map(|_| BufferRecorder::fork()).collect();
        // Record in reverse to prove the join order, not the recording
        // order, decides the merged stream.
        record_scenario(&mut forks[1], 1);
        record_scenario(&mut forks[0], 0);
        for fork in forks {
            parent.join(fork);
        }

        assert_eq!(parent.events(), serial.events());
        assert_eq!(parent.counts(), serial.counts());
        assert_eq!(parent.spans(), serial.spans());
    }

    /// `join_merged` interleaves overlapping-timeline forks by
    /// `(time, fork index, within-fork order)` — the exact stream one
    /// global recorder would have produced if the shards' events had been
    /// recorded time-ordered with fork index breaking ties.
    #[test]
    fn join_merged_interleaves_by_time_then_fork_order() {
        let mut a = BufferRecorder::fork();
        a.record(Time::from_nanos(0), Event::EcnMark { flow: 0 });
        a.record(Time::from_nanos(10), Event::EcnMark { flow: 0 });
        a.count("steps", 2);
        let mut b = BufferRecorder::fork();
        b.record(Time::from_nanos(0), Event::EcnMark { flow: 1 });
        b.record(Time::from_nanos(5), Event::EcnMark { flow: 1 });
        b.record(Time::from_nanos(10), Event::CnpSent { flow: 1 });
        b.count("steps", 3);

        let mut parent = BufferRecorder::new();
        parent.record(Time::from_nanos(99), Event::GateRelease { job: 7 });
        parent.join_merged(vec![a, b]);

        let got: Vec<(u64, Option<u32>)> = parent
            .events()
            .iter()
            .map(|te| (te.at.as_nanos(), te.event.flow()))
            .collect();
        // Pre-existing events stay first; merged events are time-sorted
        // with fork 0 winning ties, within-fork order preserved.
        assert_eq!(
            got,
            vec![
                (99, None),
                (0, Some(0)),
                (0, Some(1)),
                (5, Some(1)),
                (10, Some(0)),
                (10, Some(1)),
            ]
        );
        assert_eq!(parent.counts()["steps"], 5);
    }

    /// With a single fork, the ordered merge is identical to a plain join
    /// (each fork is already internally ordered by recording order).
    #[test]
    fn join_merged_single_fork_equals_join() {
        let record = |rec: &mut BufferRecorder| {
            rec.record(Time::from_nanos(3), Event::EcnMark { flow: 0 });
            rec.record(Time::from_nanos(3), Event::CnpSent { flow: 0 });
            rec.record(Time::from_nanos(8), Event::CnpReceived { flow: 0 });
            rec.span("engine", Duration::from_millis(1), 2);
        };
        let mut fork_a = BufferRecorder::fork();
        record(&mut fork_a);
        let mut fork_b = BufferRecorder::fork();
        record(&mut fork_b);

        let mut joined = BufferRecorder::new();
        joined.join(fork_a);
        let mut merged = BufferRecorder::new();
        merged.join_merged(vec![fork_b]);

        assert_eq!(joined.events(), merged.events());
        assert_eq!(joined.spans(), merged.spans());
    }

    #[test]
    fn remap_rewrites_job_flow_and_link_indices() {
        let mut rec = RemapRecorder::new(BufferRecorder::new(), vec![4, 9], Some(vec![3]));
        rec.record(Time::ZERO, Event::EcnMark { flow: 1 });
        rec.record(
            Time::ZERO,
            Event::JobPath {
                job: 0,
                links: vec![0],
            },
        );
        rec.record(
            Time::ZERO,
            Event::QueueDepth {
                link: 0,
                bytes: 1.5,
            },
        );
        rec.record(
            Time::ZERO,
            Event::SolverIteration {
                component: "fluid.alloc",
                index: 2,
            },
        );
        rec.count("steps", 1);
        let inner = rec.into_inner();
        assert_eq!(inner.events()[0].event, Event::EcnMark { flow: 9 });
        assert_eq!(
            inner.events()[1].event,
            Event::JobPath {
                job: 4,
                links: vec![3]
            }
        );
        assert_eq!(
            inner.events()[2].event,
            Event::QueueDepth {
                link: 3,
                bytes: 1.5
            }
        );
        // Non-indexed events and counters pass through untouched.
        assert_eq!(
            inner.events()[3].event,
            Event::SolverIteration {
                component: "fluid.alloc",
                index: 2
            }
        );
        assert_eq!(inner.counts()["steps"], 1);
    }

    /// Identity maps make the remap a no-op: the wrapped recording is
    /// byte-identical to recording directly (the single-component case).
    #[test]
    fn identity_remap_is_transparent() {
        let mut direct = BufferRecorder::new();
        let mut wrapped = RemapRecorder::new(BufferRecorder::new(), vec![0, 1, 2], None);
        let events = [
            Event::EcnMark { flow: 2 },
            Event::QueueDepth {
                link: 0,
                bytes: 9.0,
            },
            Event::JobPath {
                job: 1,
                links: vec![0],
            },
        ];
        for e in &events {
            direct.record(Time::from_nanos(1), e.clone());
            wrapped.record(Time::from_nanos(1), e.clone());
        }
        assert_eq!(direct.events(), wrapped.into_inner().events());
    }

    #[test]
    fn metrics_aggregation_counts_by_label() {
        let mut rec = BufferRecorder::new();
        for _ in 0..3 {
            rec.record(Time::ZERO, Event::EcnMark { flow: 1 });
        }
        rec.record(Time::ZERO, Event::EcnMark { flow: 2 });
        rec.record(
            Time::ZERO,
            Event::RateChange {
                flow: 1,
                bps: 25e9,
                state: CcState::Cut,
            },
        );
        let m = rec.metrics();
        assert_eq!(m.counter("ecn_marks_total", "flow=1"), 3);
        assert_eq!(m.counter("ecn_marks_total", "flow=2"), 1);
        assert_eq!(m.counter("rate_changes_total", "flow=1,state=cut"), 1);
    }
}
