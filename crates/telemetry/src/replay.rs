//! Replay reader: parse a JSONL event log back into [`TimedEvent`]s.
//!
//! The inverse of [`crate::export::jsonl`], so recorded runs can be
//! analyzed offline (the `diagnostics` crate consumes either a live
//! [`crate::BufferRecorder`] or a replayed file). The parser handles the
//! flat one-object-per-line shape the exporter emits — string, integer,
//! float, and flat integer-array values with standard JSON string escapes —
//! and round-trips every event kind bit-exactly.

use crate::event::{CcState, Event, Phase, TimedEvent};
use simtime::Time;
use std::collections::BTreeMap;

/// Why a JSONL line could not be replayed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay: line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ReplayError {}

/// One parsed JSON scalar (or flat integer array) value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string, unescaped.
    Str(String),
    /// Any JSON number.
    Num(f64),
    /// A flat array of unsigned integers (the only array the exporter
    /// emits, for `job_path.links`).
    UInts(Vec<u32>),
}

impl JsonValue {
    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"k":v,...}`) into a key→value map.
///
/// Supports the subset this workspace's exporters emit: string values with
/// escapes, numbers, and flat arrays of unsigned integers. Exposed because
/// the summary/diff tooling reads the same shape.
pub fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut map = BTreeMap::new();
    let bytes: Vec<char> = line.trim().chars().collect();
    let mut i = 0usize;
    let err = |msg: &str, at: usize| format!("{msg} at char {at}");

    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if i >= bytes.len() || bytes[i] != '{' {
        return Err(err("expected '{'", i));
    }
    i += 1;
    loop {
        skip_ws(&mut i);
        if i < bytes.len() && bytes[i] == '}' {
            return Ok(map);
        }
        let key = parse_string(&bytes, &mut i)?;
        skip_ws(&mut i);
        if i >= bytes.len() || bytes[i] != ':' {
            return Err(err("expected ':'", i));
        }
        i += 1;
        skip_ws(&mut i);
        let val = parse_value(&bytes, &mut i)?;
        map.insert(key, val);
        skip_ws(&mut i);
        match bytes.get(i) {
            Some(',') => i += 1,
            Some('}') => return Ok(map),
            _ => return Err(err("expected ',' or '}'", i)),
        }
    }
}

fn parse_string(chars: &[char], i: &mut usize) -> Result<String, String> {
    if chars.get(*i) != Some(&'"') {
        return Err(format!("expected '\"' at char {}", *i));
    }
    *i += 1;
    let mut out = String::new();
    while let Some(&c) = chars.get(*i) {
        *i += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = chars.get(*i).copied().ok_or("dangling escape")?;
                *i += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String =
                            chars.get(*i..*i + 4).ok_or("short \\u")?.iter().collect();
                        *i += 4;
                        let cp = u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u digits")?;
                        out.push(char::from_u32(cp).ok_or("bad \\u codepoint")?);
                    }
                    other => return Err(format!("unknown escape \\{other}")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_value(chars: &[char], i: &mut usize) -> Result<JsonValue, String> {
    match chars.get(*i) {
        Some('"') => Ok(JsonValue::Str(parse_string(chars, i)?)),
        Some('[') => {
            *i += 1;
            let mut out = Vec::new();
            loop {
                while chars.get(*i).is_some_and(|c| c.is_whitespace()) {
                    *i += 1;
                }
                match chars.get(*i) {
                    Some(']') => {
                        *i += 1;
                        return Ok(JsonValue::UInts(out));
                    }
                    Some(',') => {
                        *i += 1;
                    }
                    Some(_) => {
                        let JsonValue::Num(n) = parse_number(chars, i)? else {
                            unreachable!()
                        };
                        if n < 0.0 || n.fract() != 0.0 {
                            return Err("array element is not an unsigned integer".into());
                        }
                        out.push(n as u32);
                    }
                    None => return Err("unterminated array".into()),
                }
            }
        }
        Some(_) => parse_number(chars, i),
        None => Err("missing value".into()),
    }
}

fn parse_number(chars: &[char], i: &mut usize) -> Result<JsonValue, String> {
    let start = *i;
    while chars
        .get(*i)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
    {
        *i += 1;
    }
    let s: String = chars[start..*i].iter().collect();
    s.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number {s:?} at char {start}"))
}

fn phase_from(label: &str) -> Option<Phase> {
    match label {
        "compute" => Some(Phase::Compute),
        "communicate" => Some(Phase::Communicate),
        _ => None,
    }
}

fn cc_state_from(label: &str) -> Option<CcState> {
    Some(match label {
        "restart" => CcState::Restart,
        "cut" => CcState::Cut,
        "fast_recovery" => CcState::FastRecovery,
        "additive_increase" => CcState::AdditiveIncrease,
        "hyper_increase" => CcState::HyperIncrease,
        "alloc" => CcState::Alloc,
        "delay" => CcState::Delay,
        _ => return None,
    })
}

fn event_from(map: &BTreeMap<String, JsonValue>) -> Result<TimedEvent, String> {
    let t_ns = map
        .get("t_ns")
        .and_then(JsonValue::as_u64)
        .ok_or("missing/invalid t_ns")?;
    let kind = map
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or("missing type")?;
    let u32_field = |name: &str| -> Result<u32, String> {
        map.get(name)
            .and_then(JsonValue::as_u64)
            .map(|v| v as u32)
            .ok_or(format!("missing/invalid {name}"))
    };
    let u64_field = |name: &str| -> Result<u64, String> {
        map.get(name)
            .and_then(JsonValue::as_u64)
            .ok_or(format!("missing/invalid {name}"))
    };
    let f64_field = |name: &str| -> Result<f64, String> {
        map.get(name)
            .and_then(JsonValue::as_f64)
            .ok_or(format!("missing/invalid {name}"))
    };
    let str_field = |name: &str| -> Result<&str, String> {
        map.get(name)
            .and_then(JsonValue::as_str)
            .ok_or(format!("missing/invalid {name}"))
    };
    let event = match kind {
        "queue_depth" => Event::QueueDepth {
            link: u32_field("link")?,
            bytes: f64_field("bytes")?,
        },
        "ecn_mark" => Event::EcnMark {
            flow: u32_field("flow")?,
        },
        "cnp_sent" => Event::CnpSent {
            flow: u32_field("flow")?,
        },
        "cnp_received" => Event::CnpReceived {
            flow: u32_field("flow")?,
        },
        "rate_change" => Event::RateChange {
            flow: u32_field("flow")?,
            bps: f64_field("bps")?,
            state: cc_state_from(str_field("state")?)
                .ok_or_else(|| format!("unknown cc state {:?}", str_field("state")))?,
        },
        "phase_enter" | "phase_exit" => {
            let job = u32_field("job")?;
            let phase = phase_from(str_field("phase")?)
                .ok_or_else(|| format!("unknown phase {:?}", str_field("phase")))?;
            let iteration = u64_field("iteration")?;
            if kind == "phase_enter" {
                Event::PhaseEnter {
                    job,
                    phase,
                    iteration,
                }
            } else {
                Event::PhaseExit {
                    job,
                    phase,
                    iteration,
                }
            }
        }
        "solver_iteration" => Event::SolverIteration {
            // &'static str in the live event: map known components back,
            // otherwise leak (replay is a one-shot offline path and the
            // set of component names is tiny and bounded).
            component: intern_component(str_field("component")?),
            index: u64_field("index")?,
        },
        "gate_release" => Event::GateRelease {
            job: u32_field("job")?,
        },
        "scenario" => Event::Scenario {
            name: str_field("name")?.to_string(),
        },
        "job_path" => Event::JobPath {
            job: u32_field("job")?,
            links: match map.get("links") {
                Some(JsonValue::UInts(v)) => v.clone(),
                _ => return Err("missing/invalid links".into()),
            },
        },
        "link_capacity" => Event::LinkCapacity {
            link: u32_field("link")?,
            fraction: f64_field("fraction")?,
        },
        "job_depart" => Event::JobDepart {
            job: u32_field("job")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok(TimedEvent {
        at: Time::from_nanos(t_ns),
        event,
    })
}

/// Maps a replayed component name back to a `&'static str`.
///
/// Known engine/component names return their static interning; unknown
/// names are leaked — acceptable for an offline, once-per-file path with a
/// bounded vocabulary.
fn intern_component(name: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "netsim.rate",
        "netsim.fluid",
        "netsim.packet",
        "fluid.alloc",
        "scheduler.solve",
        "scheduler.place",
    ];
    for k in KNOWN {
        if *k == name {
            return k;
        }
    }
    Box::leak(name.to_string().into_boxed_str())
}

/// Parses a JSONL event log (the output of [`crate::export::jsonl`]).
///
/// Empty lines are skipped; any malformed line aborts with a
/// [`ReplayError`] naming the line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TimedEvent>, ReplayError> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let map = parse_flat_object(line).map_err(|reason| ReplayError {
            line: idx + 1,
            reason,
        })?;
        out.push(event_from(&map).map_err(|reason| ReplayError {
            line: idx + 1,
            reason,
        })?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::jsonl;
    use simtime::Time;

    fn sample() -> Vec<TimedEvent> {
        let t = Time::from_nanos;
        vec![
            TimedEvent {
                at: t(0),
                event: Event::Scenario {
                    name: "fig1/\"fair\"\n".into(),
                },
            },
            TimedEvent {
                at: t(0),
                event: Event::JobPath {
                    job: 0,
                    links: vec![0, 3, 7],
                },
            },
            TimedEvent {
                at: t(5),
                event: Event::PhaseEnter {
                    job: 0,
                    phase: Phase::Compute,
                    iteration: 0,
                },
            },
            TimedEvent {
                at: t(1_500),
                event: Event::QueueDepth {
                    link: 0,
                    bytes: 1234.5,
                },
            },
            TimedEvent {
                at: t(2_000),
                event: Event::EcnMark { flow: 1 },
            },
            TimedEvent {
                at: t(2_000),
                event: Event::CnpSent { flow: 1 },
            },
            TimedEvent {
                at: t(2_001),
                event: Event::CnpReceived { flow: 1 },
            },
            TimedEvent {
                at: t(2_001),
                event: Event::RateChange {
                    flow: 1,
                    bps: 12.5e9,
                    state: CcState::Cut,
                },
            },
            TimedEvent {
                at: t(3_000),
                event: Event::SolverIteration {
                    component: "netsim.fluid",
                    index: 4,
                },
            },
            TimedEvent {
                at: t(3_500),
                event: Event::GateRelease { job: 1 },
            },
            TimedEvent {
                at: t(4_000),
                event: Event::PhaseExit {
                    job: 0,
                    phase: Phase::Compute,
                    iteration: 0,
                },
            },
            TimedEvent {
                at: t(4_200),
                event: Event::LinkCapacity {
                    link: 0,
                    fraction: 0.25,
                },
            },
            TimedEvent {
                at: t(4_500),
                event: Event::JobDepart { job: 1 },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let events = sample();
        let text = jsonl(&events);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(events, back);
    }

    #[test]
    fn round_trip_is_a_fixed_point() {
        let text = jsonl(&sample());
        let text2 = jsonl(&parse_jsonl(&text).unwrap());
        assert_eq!(text, text2);
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = parse_jsonl("{\"t_ns\":0,\"type\":\"scenario\",\"name\":\"x\"}\nnot json\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_jsonl("{\"t_ns\":0,\"type\":\"warp_drive\"}\n").unwrap_err();
        assert!(err.reason.contains("warp_drive"), "{err}");
    }

    #[test]
    fn empty_lines_are_skipped() {
        let parsed = parse_jsonl("\n\n{\"t_ns\":7,\"type\":\"ecn_mark\",\"flow\":2}\n\n").unwrap();
        assert_eq!(
            parsed,
            vec![TimedEvent {
                at: Time::from_nanos(7),
                event: Event::EcnMark { flow: 2 }
            }]
        );
    }

    #[test]
    fn flat_object_parser_handles_escapes_and_arrays() {
        let m = parse_flat_object(r#"{"a":"x\"y","b":2.5,"c":[1,2,3]}"#).unwrap();
        assert_eq!(m["a"], JsonValue::Str("x\"y".into()));
        assert_eq!(m["b"], JsonValue::Num(2.5));
        assert_eq!(m["c"], JsonValue::UInts(vec![1, 2, 3]));
    }

    #[test]
    fn event_accessors_cover_indices() {
        assert_eq!(Event::EcnMark { flow: 3 }.flow(), Some(3));
        assert_eq!(Event::GateRelease { job: 2 }.job(), Some(2));
        assert_eq!(Event::EcnMark { flow: 3 }.job(), Some(3));
        assert_eq!(
            Event::Scenario { name: "x".into() }.job(),
            None,
            "scenario markers are not job-scoped"
        );
        assert_eq!(
            Event::JobPath {
                job: 1,
                links: vec![0]
            }
            .job(),
            Some(1)
        );
    }
}
