//! Replay reader: parse a JSONL event log back into [`TimedEvent`]s.
//!
//! The inverse of [`crate::export::jsonl`], so recorded runs can be
//! analyzed offline (the `diagnostics` crate consumes either a live
//! [`crate::BufferRecorder`] or a replayed file). The parser handles the
//! flat one-object-per-line shape the exporter emits — string, integer,
//! float, and flat integer-array values with standard JSON string escapes —
//! and round-trips every event kind bit-exactly.
//!
//! Malformed input (truncated lines, bad escapes, nested values, seq
//! regressions) never panics: every failure surfaces as a [`ReplayError`]
//! carrying a typed [`ReplayErrorKind`] and the 1-based line number, so
//! tooling can distinguish a corrupt file from an unknown event
//! vocabulary.

use crate::event::{CcState, Event, Phase, SpanKind, TimedEvent};
use simtime::Time;
use std::collections::BTreeMap;

/// The category of a replay failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplayErrorKind {
    /// Structurally broken JSON: missing braces, colons, commas, trailing
    /// garbage, or an unsupported scalar (`true`, `null`, …).
    Syntax,
    /// A string literal ran off the end of the line.
    UnterminatedString,
    /// A malformed `\` escape inside a string literal.
    BadEscape,
    /// A value position that did not parse as a JSON number.
    BadNumber,
    /// A nested object — the exporters only ever emit flat objects.
    NonFlatValue,
    /// An array containing anything but unsigned integers.
    BadArray,
    /// A required event field is absent.
    MissingField,
    /// A field is present but has the wrong type, range, or vocabulary.
    BadField,
    /// An event `type` outside the known vocabulary.
    UnknownEventType,
    /// A `seq` field that is not a non-negative integer or does not
    /// increase monotonically over the stream.
    BadSeq,
    /// A span event that breaks per-job nesting: an end with no matching
    /// open span, an interleaved end, or a begin in an illegal position
    /// (a phase span outside its iteration, or a nested iteration).
    BadSpan,
}

impl ReplayErrorKind {
    pub fn label(self) -> &'static str {
        match self {
            ReplayErrorKind::Syntax => "syntax",
            ReplayErrorKind::UnterminatedString => "unterminated_string",
            ReplayErrorKind::BadEscape => "bad_escape",
            ReplayErrorKind::BadNumber => "bad_number",
            ReplayErrorKind::NonFlatValue => "non_flat_value",
            ReplayErrorKind::BadArray => "bad_array",
            ReplayErrorKind::MissingField => "missing_field",
            ReplayErrorKind::BadField => "bad_field",
            ReplayErrorKind::UnknownEventType => "unknown_event_type",
            ReplayErrorKind::BadSeq => "bad_seq",
            ReplayErrorKind::BadSpan => "bad_span",
        }
    }
}

/// Why a JSONL line could not be replayed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// The failure category.
    pub kind: ReplayErrorKind,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay: line {} [{}]: {}",
            self.line,
            self.kind.label(),
            self.reason
        )
    }
}

impl std::error::Error for ReplayError {}

/// A line-local parse failure, before it is attributed to a line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub kind: ReplayErrorKind,
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for ParseError {}

fn perr(kind: ReplayErrorKind, reason: impl Into<String>) -> ParseError {
    ParseError {
        kind,
        reason: reason.into(),
    }
}

/// One parsed JSON scalar (or flat integer array) value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string, unescaped.
    Str(String),
    /// Any JSON number.
    Num(f64),
    /// A flat array of unsigned integers (the only array the exporter
    /// emits, for `job_path.links`).
    UInts(Vec<u32>),
}

impl JsonValue {
    /// The value as a non-negative integer fitting u64, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"k":v,...}`) into a key→value map.
///
/// Supports the subset this workspace's exporters emit: string values with
/// escapes, numbers, and flat arrays of unsigned integers. Exposed because
/// the summary/diff/history tooling reads the same shape. Rejects nested
/// objects, duplicate keys, and trailing garbage with a typed error.
pub fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonValue>, ParseError> {
    let mut map = BTreeMap::new();
    let bytes: Vec<char> = line.trim().chars().collect();
    let mut i = 0usize;
    let err = |msg: &str, at: usize| perr(ReplayErrorKind::Syntax, format!("{msg} at char {at}"));

    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_whitespace() {
            *i += 1;
        }
    };
    let finish = |map: BTreeMap<String, JsonValue>, i: &mut usize| {
        *i += 1;
        skip_ws(i);
        if *i < bytes.len() {
            return Err(err("trailing characters after object", *i));
        }
        Ok(map)
    };
    skip_ws(&mut i);
    if i >= bytes.len() || bytes[i] != '{' {
        return Err(err("expected '{'", i));
    }
    i += 1;
    loop {
        skip_ws(&mut i);
        if i < bytes.len() && bytes[i] == '}' {
            return finish(map, &mut i);
        }
        let key = parse_string(&bytes, &mut i)?;
        skip_ws(&mut i);
        if i >= bytes.len() || bytes[i] != ':' {
            return Err(err("expected ':'", i));
        }
        i += 1;
        skip_ws(&mut i);
        let val = parse_value(&bytes, &mut i)?;
        if map.insert(key.clone(), val).is_some() {
            return Err(perr(
                ReplayErrorKind::Syntax,
                format!("duplicate key {key:?}"),
            ));
        }
        skip_ws(&mut i);
        match bytes.get(i) {
            Some(',') => i += 1,
            Some('}') => return finish(map, &mut i),
            _ => return Err(err("expected ',' or '}'", i)),
        }
    }
}

fn parse_string(chars: &[char], i: &mut usize) -> Result<String, ParseError> {
    if chars.get(*i) != Some(&'"') {
        return Err(perr(
            ReplayErrorKind::Syntax,
            format!("expected '\"' at char {}", *i),
        ));
    }
    *i += 1;
    let mut out = String::new();
    while let Some(&c) = chars.get(*i) {
        *i += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = chars
                    .get(*i)
                    .copied()
                    .ok_or_else(|| perr(ReplayErrorKind::BadEscape, "dangling escape"))?;
                *i += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String = chars
                            .get(*i..*i + 4)
                            .ok_or_else(|| perr(ReplayErrorKind::BadEscape, "short \\u escape"))?
                            .iter()
                            .collect();
                        *i += 4;
                        let cp = u32::from_str_radix(&hex, 16).map_err(|_| {
                            perr(
                                ReplayErrorKind::BadEscape,
                                format!("bad \\u digits {hex:?}"),
                            )
                        })?;
                        out.push(char::from_u32(cp).ok_or_else(|| {
                            perr(
                                ReplayErrorKind::BadEscape,
                                format!("bad \\u codepoint {cp:#x}"),
                            )
                        })?);
                    }
                    other => {
                        return Err(perr(
                            ReplayErrorKind::BadEscape,
                            format!("unknown escape \\{other}"),
                        ))
                    }
                }
            }
            c => out.push(c),
        }
    }
    Err(perr(
        ReplayErrorKind::UnterminatedString,
        "unterminated string",
    ))
}

fn parse_value(chars: &[char], i: &mut usize) -> Result<JsonValue, ParseError> {
    match chars.get(*i) {
        Some('"') => Ok(JsonValue::Str(parse_string(chars, i)?)),
        Some('{') => Err(perr(
            ReplayErrorKind::NonFlatValue,
            "nested object where a flat value was expected",
        )),
        Some('[') => {
            *i += 1;
            let mut out = Vec::new();
            loop {
                while chars.get(*i).is_some_and(|c| c.is_whitespace()) {
                    *i += 1;
                }
                match chars.get(*i) {
                    Some(']') => {
                        *i += 1;
                        return Ok(JsonValue::UInts(out));
                    }
                    Some(',') => {
                        *i += 1;
                    }
                    Some(_) => {
                        let JsonValue::Num(n) = parse_number(chars, i)? else {
                            unreachable!("parse_number only returns Num")
                        };
                        if n < 0.0 || n.fract() != 0.0 || n > f64::from(u32::MAX) {
                            return Err(perr(
                                ReplayErrorKind::BadArray,
                                "array element is not an unsigned integer",
                            ));
                        }
                        out.push(n as u32);
                    }
                    None => {
                        return Err(perr(ReplayErrorKind::BadArray, "unterminated array"));
                    }
                }
            }
        }
        Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.') => parse_number(chars, i),
        Some(c) => Err(perr(
            ReplayErrorKind::Syntax,
            format!("unsupported value starting with {c:?}"),
        )),
        None => Err(perr(ReplayErrorKind::Syntax, "missing value")),
    }
}

fn parse_number(chars: &[char], i: &mut usize) -> Result<JsonValue, ParseError> {
    let start = *i;
    while chars
        .get(*i)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
    {
        *i += 1;
    }
    let s: String = chars[start..*i].iter().collect();
    match s.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(JsonValue::Num(n)),
        _ => Err(perr(
            ReplayErrorKind::BadNumber,
            format!("bad number {s:?} at char {start}"),
        )),
    }
}

fn phase_from(label: &str) -> Option<Phase> {
    match label {
        "compute" => Some(Phase::Compute),
        "communicate" => Some(Phase::Communicate),
        _ => None,
    }
}

fn span_kind_from(label: &str) -> Option<SpanKind> {
    match label {
        "iteration" => Some(SpanKind::Iteration),
        "compute" => Some(SpanKind::Compute),
        "communicate" => Some(SpanKind::Communicate),
        _ => None,
    }
}

fn cc_state_from(label: &str) -> Option<CcState> {
    Some(match label {
        "restart" => CcState::Restart,
        "cut" => CcState::Cut,
        "fast_recovery" => CcState::FastRecovery,
        "additive_increase" => CcState::AdditiveIncrease,
        "hyper_increase" => CcState::HyperIncrease,
        "alloc" => CcState::Alloc,
        "delay" => CcState::Delay,
        _ => return None,
    })
}

fn event_from(map: &BTreeMap<String, JsonValue>) -> Result<TimedEvent, ParseError> {
    let field = |name: &str| -> Result<&JsonValue, ParseError> {
        map.get(name).ok_or_else(|| {
            perr(
                ReplayErrorKind::MissingField,
                format!("missing field {name:?}"),
            )
        })
    };
    let bad = |name: &str| perr(ReplayErrorKind::BadField, format!("invalid field {name:?}"));
    let u32_field = |name: &str| -> Result<u32, ParseError> {
        let v = field(name)?.as_u64().ok_or_else(|| bad(name))?;
        u32::try_from(v).map_err(|_| bad(name))
    };
    let u64_field =
        |name: &str| -> Result<u64, ParseError> { field(name)?.as_u64().ok_or_else(|| bad(name)) };
    let f64_field =
        |name: &str| -> Result<f64, ParseError> { field(name)?.as_f64().ok_or_else(|| bad(name)) };
    let str_field =
        |name: &str| -> Result<&str, ParseError> { field(name)?.as_str().ok_or_else(|| bad(name)) };
    let t_ns = u64_field("t_ns")?;
    let kind = str_field("type")?;
    let event = match kind {
        "queue_depth" => Event::QueueDepth {
            link: u32_field("link")?,
            bytes: f64_field("bytes")?,
        },
        "ecn_mark" => Event::EcnMark {
            flow: u32_field("flow")?,
        },
        "cnp_sent" => Event::CnpSent {
            flow: u32_field("flow")?,
        },
        "cnp_received" => Event::CnpReceived {
            flow: u32_field("flow")?,
        },
        "rate_change" => Event::RateChange {
            flow: u32_field("flow")?,
            bps: f64_field("bps")?,
            state: cc_state_from(str_field("state")?).ok_or_else(|| {
                perr(
                    ReplayErrorKind::BadField,
                    format!("unknown cc state {:?}", str_field("state")),
                )
            })?,
        },
        "phase_enter" | "phase_exit" => {
            let job = u32_field("job")?;
            let phase = phase_from(str_field("phase")?).ok_or_else(|| {
                perr(
                    ReplayErrorKind::BadField,
                    format!("unknown phase {:?}", str_field("phase")),
                )
            })?;
            let iteration = u64_field("iteration")?;
            if kind == "phase_enter" {
                Event::PhaseEnter {
                    job,
                    phase,
                    iteration,
                }
            } else {
                Event::PhaseExit {
                    job,
                    phase,
                    iteration,
                }
            }
        }
        "solver_iteration" => Event::SolverIteration {
            // &'static str in the live event: map known components back,
            // otherwise leak (replay is a one-shot offline path and the
            // set of component names is tiny and bounded).
            component: intern_component(str_field("component")?),
            index: u64_field("index")?,
        },
        "gate_release" => Event::GateRelease {
            job: u32_field("job")?,
        },
        "scenario" => Event::Scenario {
            name: str_field("name")?.to_string(),
        },
        "job_path" => Event::JobPath {
            job: u32_field("job")?,
            links: match map.get("links") {
                Some(JsonValue::UInts(v)) => v.clone(),
                Some(_) => return Err(bad("links")),
                None => {
                    return Err(perr(
                        ReplayErrorKind::MissingField,
                        "missing field \"links\"",
                    ))
                }
            },
        },
        "link_capacity" => Event::LinkCapacity {
            link: u32_field("link")?,
            fraction: f64_field("fraction")?,
        },
        "job_depart" => Event::JobDepart {
            job: u32_field("job")?,
        },
        // `id`/`parent` on span lines are derived fields the exporter adds
        // for viewers; identity is (job, kind, iteration), so they are
        // ignored here and round-trips stay exact.
        "span_begin" | "span_end" => {
            let job = u32_field("job")?;
            let skind = span_kind_from(str_field("kind")?).ok_or_else(|| {
                perr(
                    ReplayErrorKind::BadField,
                    format!("unknown span kind {:?}", str_field("kind")),
                )
            })?;
            let iteration = u64_field("iteration")?;
            if kind == "span_begin" {
                Event::SpanBegin {
                    job,
                    kind: skind,
                    iteration,
                }
            } else {
                Event::SpanEnd {
                    job,
                    kind: skind,
                    iteration,
                }
            }
        }
        other => {
            return Err(perr(
                ReplayErrorKind::UnknownEventType,
                format!("unknown event type {other:?}"),
            ))
        }
    };
    Ok(TimedEvent {
        at: Time::from_nanos(t_ns),
        event,
    })
}

/// Maps a replayed component name back to a `&'static str`.
///
/// Known engine/component names return their static interning; unknown
/// names are leaked — acceptable for an offline, once-per-file path with a
/// bounded vocabulary.
fn intern_component(name: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "netsim.rate",
        "netsim.fluid",
        "netsim.packet",
        "fluid.alloc",
        "scheduler.solve",
        "scheduler.place",
    ];
    for k in KNOWN {
        if *k == name {
            return k;
        }
    }
    Box::leak(name.to_string().into_boxed_str())
}

/// Parses a JSONL event log (the output of [`crate::export::jsonl`]).
///
/// Empty lines are skipped; any malformed line aborts with a
/// [`ReplayError`] naming the line and the failure kind. Lines may carry a
/// `seq` field (the exporter has emitted one per event since it grew
/// sequence numbers); when present it must increase strictly
/// monotonically, which catches truncated-and-reglued logs.
pub fn parse_jsonl(text: &str) -> Result<Vec<TimedEvent>, ReplayError> {
    let mut out = Vec::new();
    let mut last_seq: Option<u64> = None;
    let mut spans = SpanNesting::default();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let attribute = |e: ParseError| ReplayError {
            line: idx + 1,
            kind: e.kind,
            reason: e.reason,
        };
        let map = parse_flat_object(line).map_err(attribute)?;
        if let Some(v) = map.get("seq") {
            let seq = v.as_u64().ok_or_else(|| ReplayError {
                line: idx + 1,
                kind: ReplayErrorKind::BadSeq,
                reason: "seq must be a non-negative integer".to_string(),
            })?;
            if let Some(prev) = last_seq {
                if seq <= prev {
                    return Err(ReplayError {
                        line: idx + 1,
                        kind: ReplayErrorKind::BadSeq,
                        reason: format!("seq {seq} does not increase past {prev}"),
                    });
                }
            }
            last_seq = Some(seq);
        }
        let te = event_from(&map).map_err(attribute)?;
        spans.check(&te.event).map_err(attribute)?;
        out.push(te);
    }
    Ok(out)
}

/// Streaming validator for span well-formedness: per-job LIFO stacks of
/// open spans, reset at every `Scenario` marker (scenarios are recorded
/// independently, so spans never cross them). Rejects orphan or
/// interleaved `span_end`s and begins in illegal positions; spans still
/// open when the stream ends are fine (truncated recordings are normal).
#[derive(Default)]
struct SpanNesting {
    open: BTreeMap<u32, Vec<(SpanKind, u64)>>,
}

impl SpanNesting {
    fn check(&mut self, event: &Event) -> Result<(), ParseError> {
        let bad = |reason: String| perr(ReplayErrorKind::BadSpan, reason);
        match event {
            Event::Scenario { .. } => self.open.clear(),
            Event::SpanBegin {
                job,
                kind,
                iteration,
            } => {
                let stack = self.open.entry(*job).or_default();
                match (kind, stack.last()) {
                    (SpanKind::Iteration, None) => {}
                    (SpanKind::Iteration, Some(&(k, i))) => {
                        return Err(bad(format!(
                            "iteration span for job {job} opens inside open {} span \
                             of iteration {i}",
                            k.label()
                        )))
                    }
                    (_, Some(&(SpanKind::Iteration, i))) if i == *iteration => {}
                    (k, top) => {
                        return Err(bad(format!(
                            "{} span begin for job {job} iteration {iteration} \
                             outside its iteration span (innermost open: {})",
                            k.label(),
                            top.map_or("none".to_string(), |&(k, i)| format!(
                                "{} span of iteration {i}",
                                k.label()
                            ))
                        )))
                    }
                }
                stack.push((*kind, *iteration));
            }
            Event::SpanEnd {
                job,
                kind,
                iteration,
            } => {
                let stack = self.open.entry(*job).or_default();
                match stack.last() {
                    Some(&(k, i)) if k == *kind && i == *iteration => {
                        stack.pop();
                    }
                    Some(&(k, i)) => {
                        return Err(bad(format!(
                            "span end ({} of iteration {iteration}) for job {job} does \
                             not match innermost open span ({} of iteration {i})",
                            kind.label(),
                            k.label()
                        )))
                    }
                    None => {
                        return Err(bad(format!(
                            "orphan span end ({} of iteration {iteration}) for job {job} \
                             with no open span",
                            kind.label()
                        )))
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::jsonl;
    use simtime::Time;

    fn sample() -> Vec<TimedEvent> {
        let t = Time::from_nanos;
        vec![
            TimedEvent {
                at: t(0),
                event: Event::Scenario {
                    name: "fig1/\"fair\"\n".into(),
                },
            },
            TimedEvent {
                at: t(0),
                event: Event::JobPath {
                    job: 0,
                    links: vec![0, 3, 7],
                },
            },
            TimedEvent {
                at: t(5),
                event: Event::PhaseEnter {
                    job: 0,
                    phase: Phase::Compute,
                    iteration: 0,
                },
            },
            TimedEvent {
                at: t(1_500),
                event: Event::QueueDepth {
                    link: 0,
                    bytes: 1234.5,
                },
            },
            TimedEvent {
                at: t(2_000),
                event: Event::EcnMark { flow: 1 },
            },
            TimedEvent {
                at: t(2_000),
                event: Event::CnpSent { flow: 1 },
            },
            TimedEvent {
                at: t(2_001),
                event: Event::CnpReceived { flow: 1 },
            },
            TimedEvent {
                at: t(2_001),
                event: Event::RateChange {
                    flow: 1,
                    bps: 12.5e9,
                    state: CcState::Cut,
                },
            },
            TimedEvent {
                at: t(3_000),
                event: Event::SolverIteration {
                    component: "netsim.fluid",
                    index: 4,
                },
            },
            TimedEvent {
                at: t(3_500),
                event: Event::GateRelease { job: 1 },
            },
            TimedEvent {
                at: t(4_000),
                event: Event::PhaseExit {
                    job: 0,
                    phase: Phase::Compute,
                    iteration: 0,
                },
            },
            TimedEvent {
                at: t(4_200),
                event: Event::LinkCapacity {
                    link: 0,
                    fraction: 0.25,
                },
            },
            TimedEvent {
                at: t(4_500),
                event: Event::JobDepart { job: 1 },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let events = sample();
        let text = jsonl(&events);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(events, back);
    }

    #[test]
    fn round_trip_is_a_fixed_point() {
        let text = jsonl(&sample());
        let text2 = jsonl(&parse_jsonl(&text).unwrap());
        assert_eq!(text, text2);
    }

    #[test]
    fn malformed_lines_report_position_and_kind() {
        let err = parse_jsonl("{\"t_ns\":0,\"type\":\"scenario\",\"name\":\"x\"}\nnot json\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, ReplayErrorKind::Syntax);
        let err = parse_jsonl("{\"t_ns\":0,\"type\":\"warp_drive\"}\n").unwrap_err();
        assert_eq!(err.kind, ReplayErrorKind::UnknownEventType);
        assert!(err.reason.contains("warp_drive"), "{err}");
    }

    #[test]
    fn typed_kinds_for_each_malformation() {
        let cases: &[(&str, ReplayErrorKind)] = &[
            // Truncated mid-string.
            (
                "{\"t_ns\":0,\"type\":\"scena",
                ReplayErrorKind::UnterminatedString,
            ),
            // Bad escape.
            (
                "{\"t_ns\":0,\"type\":\"scenario\",\"name\":\"\\q\"}",
                ReplayErrorKind::BadEscape,
            ),
            // Short \u escape at end of line.
            (
                "{\"t_ns\":0,\"type\":\"scenario\",\"name\":\"\\u00",
                ReplayErrorKind::BadEscape,
            ),
            // Nested object value.
            (
                "{\"t_ns\":0,\"type\":\"scenario\",\"name\":{\"x\":1}}",
                ReplayErrorKind::NonFlatValue,
            ),
            // Unsupported scalar.
            ("{\"t_ns\":0,\"flag\":true}", ReplayErrorKind::Syntax),
            // Bad number.
            (
                "{\"t_ns\":0,\"type\":\"ecn_mark\",\"flow\":1e}",
                ReplayErrorKind::BadNumber,
            ),
            // Array with a float element.
            (
                "{\"t_ns\":0,\"type\":\"job_path\",\"job\":0,\"links\":[1.5]}",
                ReplayErrorKind::BadArray,
            ),
            // Unterminated array.
            (
                "{\"t_ns\":0,\"type\":\"job_path\",\"job\":0,\"links\":[1,",
                ReplayErrorKind::BadArray,
            ),
            // Missing required field.
            (
                "{\"t_ns\":0,\"type\":\"ecn_mark\"}",
                ReplayErrorKind::MissingField,
            ),
            // Field with the wrong type.
            (
                "{\"t_ns\":0,\"type\":\"ecn_mark\",\"flow\":\"zero\"}",
                ReplayErrorKind::BadField,
            ),
            // Flow index beyond u32.
            (
                "{\"t_ns\":0,\"type\":\"ecn_mark\",\"flow\":4294967296}",
                ReplayErrorKind::BadField,
            ),
            // Duplicate key.
            (
                "{\"t_ns\":0,\"t_ns\":1,\"type\":\"ecn_mark\",\"flow\":0}",
                ReplayErrorKind::Syntax,
            ),
            // Trailing garbage.
            (
                "{\"t_ns\":0,\"type\":\"ecn_mark\",\"flow\":0} extra",
                ReplayErrorKind::Syntax,
            ),
            // Non-integer seq.
            (
                "{\"seq\":1.5,\"t_ns\":0,\"type\":\"ecn_mark\",\"flow\":0}",
                ReplayErrorKind::BadSeq,
            ),
        ];
        for (text, want) in cases {
            let err = parse_jsonl(text).unwrap_err();
            assert_eq!(err.kind, *want, "input {text:?} gave {err}");
        }
    }

    #[test]
    fn span_events_round_trip_with_derived_ids_ignored() {
        let t = Time::from_nanos;
        let span = |at, kind, iteration, begin| TimedEvent {
            at: t(at),
            event: if begin {
                Event::SpanBegin {
                    job: 0,
                    kind,
                    iteration,
                }
            } else {
                Event::SpanEnd {
                    job: 0,
                    kind,
                    iteration,
                }
            },
        };
        let events = vec![
            span(0, SpanKind::Iteration, 0, true),
            span(0, SpanKind::Compute, 0, true),
            span(9, SpanKind::Compute, 0, false),
            span(9, SpanKind::Communicate, 0, true),
            span(20, SpanKind::Communicate, 0, false),
            span(20, SpanKind::Iteration, 0, false),
            // A dangling open at stream end is fine.
            span(20, SpanKind::Iteration, 1, true),
        ];
        let text = jsonl(&events);
        assert!(text.contains("\"id\":"), "exporter adds derived ids");
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(events, back);
        assert_eq!(text, jsonl(&back), "fixed point despite derived fields");
    }

    #[test]
    fn mangled_span_streams_are_rejected() {
        let line = |t_ns: u64, ty: &str, kind: &str, job: u32, iter: u64| {
            format!("{{\"t_ns\":{t_ns},\"type\":\"{ty}\",\"job\":{job},\"kind\":\"{kind}\",\"iteration\":{iter}}}\n")
        };
        // Orphan end.
        let err = parse_jsonl(&line(0, "span_end", "compute", 0, 0)).unwrap_err();
        assert_eq!(err.kind, ReplayErrorKind::BadSpan);
        assert!(err.reason.contains("orphan"), "{err}");
        // Interleaved: compute span closed by the iteration's end.
        let text = line(0, "span_begin", "iteration", 0, 0)
            + &line(0, "span_begin", "compute", 0, 0)
            + &line(5, "span_end", "iteration", 0, 0);
        let err = parse_jsonl(&text).unwrap_err();
        assert_eq!(err.kind, ReplayErrorKind::BadSpan);
        assert_eq!(err.line, 3);
        // Phase span outside any iteration span.
        let err = parse_jsonl(&line(0, "span_begin", "communicate", 0, 0)).unwrap_err();
        assert_eq!(err.kind, ReplayErrorKind::BadSpan);
        // Phase span under the wrong iteration.
        let text =
            line(0, "span_begin", "iteration", 0, 0) + &line(1, "span_begin", "compute", 0, 3);
        let err = parse_jsonl(&text).unwrap_err();
        assert_eq!(err.kind, ReplayErrorKind::BadSpan);
        // Nested iteration span.
        let text =
            line(0, "span_begin", "iteration", 0, 0) + &line(1, "span_begin", "iteration", 0, 1);
        let err = parse_jsonl(&text).unwrap_err();
        assert_eq!(err.kind, ReplayErrorKind::BadSpan);
        // Unknown span kind is a field error, not a nesting error.
        let err = parse_jsonl(&line(0, "span_begin", "warp", 0, 0)).unwrap_err();
        assert_eq!(err.kind, ReplayErrorKind::BadField);
        // Jobs nest independently, and a scenario marker resets the stacks.
        let ok = line(0, "span_begin", "iteration", 0, 0)
            + &line(0, "span_begin", "iteration", 1, 0)
            + &line(1, "span_begin", "compute", 1, 0)
            + "{\"t_ns\":2,\"type\":\"scenario\",\"name\":\"next\"}\n"
            + &line(3, "span_begin", "iteration", 1, 0);
        assert_eq!(parse_jsonl(&ok).unwrap().len(), 5);
    }

    #[test]
    fn seq_must_increase_monotonically() {
        let ok = "{\"seq\":0,\"t_ns\":0,\"type\":\"ecn_mark\",\"flow\":0}\n\
                  {\"seq\":4,\"t_ns\":1,\"type\":\"ecn_mark\",\"flow\":1}\n";
        assert_eq!(parse_jsonl(ok).unwrap().len(), 2);
        let dup = "{\"seq\":3,\"t_ns\":0,\"type\":\"ecn_mark\",\"flow\":0}\n\
                   {\"seq\":3,\"t_ns\":1,\"type\":\"ecn_mark\",\"flow\":1}\n";
        let err = parse_jsonl(dup).unwrap_err();
        assert_eq!(err.kind, ReplayErrorKind::BadSeq);
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_lines_are_skipped() {
        let parsed = parse_jsonl("\n\n{\"t_ns\":7,\"type\":\"ecn_mark\",\"flow\":2}\n\n").unwrap();
        assert_eq!(
            parsed,
            vec![TimedEvent {
                at: Time::from_nanos(7),
                event: Event::EcnMark { flow: 2 }
            }]
        );
    }

    #[test]
    fn flat_object_parser_handles_escapes_and_arrays() {
        let m = parse_flat_object(r#"{"a":"x\"y","b":2.5,"c":[1,2,3]}"#).unwrap();
        assert_eq!(m["a"], JsonValue::Str("x\"y".into()));
        assert_eq!(m["b"], JsonValue::Num(2.5));
        assert_eq!(m["c"], JsonValue::UInts(vec![1, 2, 3]));
    }

    #[test]
    fn event_accessors_cover_indices() {
        assert_eq!(Event::EcnMark { flow: 3 }.flow(), Some(3));
        assert_eq!(Event::GateRelease { job: 2 }.job(), Some(2));
        assert_eq!(Event::EcnMark { flow: 3 }.job(), Some(3));
        assert_eq!(
            Event::Scenario { name: "x".into() }.job(),
            None,
            "scenario markers are not job-scoped"
        );
        assert_eq!(
            Event::JobPath {
                job: 1,
                links: vec![0]
            }
            .job(),
            Some(1)
        );
    }
}
