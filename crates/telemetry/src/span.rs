//! Typed-span emission helper shared by the simulation engines.
//!
//! [`SpanTracker`] turns the phase transitions an engine already records
//! into a well-formed, strictly nested span stream per job:
//!
//! ```text
//! span_begin(iteration i) ⊃ span_begin(compute i) … span_end(compute i)
//!                         ⊃ span_begin(communicate i) … span_end(communicate i)
//! span_end(iteration i)
//! ```
//!
//! The call contract keeps Chrome-trace B/E stacks (which pair begins and
//! ends per thread lane in stream order) correct without any buffering:
//!
//! * call [`SpanTracker::enter`] **before** recording the matching
//!   `PhaseEnter`, and
//! * call [`SpanTracker::exit`] **after** recording the matching
//!   `PhaseExit`,
//!
//! so the phase slice always sits *inside* its span. An iteration span
//! opens at the first phase entered for that iteration index and closes
//! when a phase of a *different* iteration begins (every engine re-enters
//! compute for iteration `i+1` at the very instant iteration `i`'s
//! communication completes, so the close lands on the completion
//! timestamp). Rollover-based closing also keeps pipelined jobs — which
//! exit and re-enter communication several times within one iteration —
//! under a single iteration span. The last iteration of a stream dangles
//! open — parsers accept that, exactly like dangling phase enters.
//!
//! Everything is gated on `R::ENABLED`: with a disabled recorder the
//! tracker holds no per-job state (the constructor allocates nothing) and
//! every call is a no-op the optimizer removes.

use crate::event::{Event, Phase, SpanKind};
use crate::recorder::Recorder;
use simtime::Time;

fn kind_of(phase: Phase) -> SpanKind {
    match phase {
        Phase::Compute => SpanKind::Compute,
        Phase::Communicate => SpanKind::Communicate,
    }
}

/// Open spans for one job: the iteration span and the phase span inside it.
#[derive(Debug, Clone, Copy, Default)]
struct JobSpans {
    iteration: Option<u64>,
    phase: Option<(SpanKind, u64)>,
}

/// Per-job open-span state for span emission. One per engine run.
#[derive(Debug, Clone, Default)]
pub struct SpanTracker {
    /// Open spans per job; empty when the recorder is disabled.
    open: Vec<JobSpans>,
}

impl SpanTracker {
    /// Creates a tracker for `jobs` jobs. With a disabled recorder the
    /// state vector stays empty (a `Vec::new()` performs no allocation).
    pub fn new<R: Recorder>(jobs: usize) -> SpanTracker {
        SpanTracker {
            open: if R::ENABLED {
                vec![JobSpans::default(); jobs]
            } else {
                Vec::new()
            },
        }
    }

    /// Emits the span begins implied by `job` entering `phase` of
    /// iteration `iteration`. Call **before** recording the `PhaseEnter`.
    pub fn enter<R: Recorder>(
        &mut self,
        rec: &mut R,
        at: Time,
        job: u32,
        phase: Phase,
        iteration: u64,
    ) {
        if !R::ENABLED {
            return;
        }
        let slot = &mut self.open[job as usize];
        // Defensive closes: engines always exit a phase before entering
        // the next one, so these only trigger on departure races — but
        // they guarantee the emitted stream stays LIFO-nested regardless.
        if let Some((kind, it)) = slot.phase.take() {
            rec.record(
                at,
                Event::SpanEnd {
                    job,
                    kind,
                    iteration: it,
                },
            );
        }
        if slot.iteration != Some(iteration) {
            if let Some(prev) = slot.iteration {
                rec.record(
                    at,
                    Event::SpanEnd {
                        job,
                        kind: SpanKind::Iteration,
                        iteration: prev,
                    },
                );
            }
            rec.record(
                at,
                Event::SpanBegin {
                    job,
                    kind: SpanKind::Iteration,
                    iteration,
                },
            );
            slot.iteration = Some(iteration);
        }
        let kind = kind_of(phase);
        rec.record(
            at,
            Event::SpanBegin {
                job,
                kind,
                iteration,
            },
        );
        slot.phase = Some((kind, iteration));
    }

    /// Emits the span end implied by `job` exiting `phase` of iteration
    /// `iteration`. Call **after** recording the `PhaseExit`. The
    /// enclosing iteration span stays open until a phase of the next
    /// iteration begins (see the module docs on rollover closing).
    pub fn exit<R: Recorder>(
        &mut self,
        rec: &mut R,
        at: Time,
        job: u32,
        phase: Phase,
        iteration: u64,
    ) {
        if !R::ENABLED {
            return;
        }
        let kind = kind_of(phase);
        let slot = &mut self.open[job as usize];
        if slot.phase != Some((kind, iteration)) {
            // Exit without a matching open (defensive): emitting an end
            // here would orphan it, so drop the event instead.
            return;
        }
        slot.phase = None;
        rec.record(
            at,
            Event::SpanEnd {
                job,
                kind,
                iteration,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{BufferRecorder, NoopRecorder, Recorder};

    fn drive<R: Recorder>(rec: &mut R) {
        let mut spans = SpanTracker::new::<R>(1);
        let t = Time::from_nanos;
        spans.enter(rec, t(0), 0, Phase::Compute, 0);
        spans.exit(rec, t(10), 0, Phase::Compute, 0);
        spans.enter(rec, t(12), 0, Phase::Communicate, 0);
        spans.exit(rec, t(20), 0, Phase::Communicate, 0);
        spans.enter(rec, t(20), 0, Phase::Compute, 1);
    }

    #[test]
    fn emits_nested_iteration_and_phase_spans() {
        let mut rec = BufferRecorder::new();
        drive(&mut rec);
        let got: Vec<(&str, SpanKind, u64)> = rec
            .events()
            .iter()
            .map(|te| match te.event {
                Event::SpanBegin {
                    kind, iteration, ..
                } => ("begin", kind, iteration),
                Event::SpanEnd {
                    kind, iteration, ..
                } => ("end", kind, iteration),
                _ => panic!("unexpected event"),
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("begin", SpanKind::Iteration, 0),
                ("begin", SpanKind::Compute, 0),
                ("end", SpanKind::Compute, 0),
                ("begin", SpanKind::Communicate, 0),
                ("end", SpanKind::Communicate, 0),
                ("end", SpanKind::Iteration, 0),
                ("begin", SpanKind::Iteration, 1),
                ("begin", SpanKind::Compute, 1),
            ]
        );
    }

    #[test]
    fn pipelined_comm_gaps_stay_under_one_iteration_span() {
        let mut rec = BufferRecorder::new();
        let mut spans = SpanTracker::new::<BufferRecorder>(1);
        let t = Time::from_nanos;
        // Two communication segments within iteration 0 (pipelined jobs
        // return to compute between segments), then iteration 1.
        spans.enter(&mut rec, t(0), 0, Phase::Compute, 0);
        spans.exit(&mut rec, t(5), 0, Phase::Compute, 0);
        spans.enter(&mut rec, t(5), 0, Phase::Communicate, 0);
        spans.exit(&mut rec, t(8), 0, Phase::Communicate, 0);
        spans.enter(&mut rec, t(8), 0, Phase::Compute, 0);
        spans.exit(&mut rec, t(10), 0, Phase::Compute, 0);
        spans.enter(&mut rec, t(10), 0, Phase::Communicate, 0);
        spans.exit(&mut rec, t(14), 0, Phase::Communicate, 0);
        spans.enter(&mut rec, t(14), 0, Phase::Compute, 1);
        let iter_spans: Vec<(&str, u64)> = rec
            .events()
            .iter()
            .filter_map(|te| match te.event {
                Event::SpanBegin {
                    kind: SpanKind::Iteration,
                    iteration,
                    ..
                } => Some(("begin", iteration)),
                Event::SpanEnd {
                    kind: SpanKind::Iteration,
                    iteration,
                    ..
                } => Some(("end", iteration)),
                _ => None,
            })
            .collect();
        assert_eq!(
            iter_spans,
            vec![("begin", 0), ("end", 0), ("begin", 1)],
            "one iteration span despite two comm segments"
        );
    }

    #[test]
    fn disabled_recorder_keeps_no_state_and_emits_nothing() {
        let mut rec = NoopRecorder;
        let spans = SpanTracker::new::<NoopRecorder>(16);
        assert!(spans.open.is_empty(), "disabled tracker must hold no state");
        drive(&mut rec);
    }

    #[test]
    fn missing_exits_still_yield_a_lifo_nested_stream() {
        let mut rec = BufferRecorder::new();
        let mut spans = SpanTracker::new::<BufferRecorder>(1);
        let t = Time::from_nanos;
        spans.enter(&mut rec, t(0), 0, Phase::Compute, 0);
        // No exits at all; the next iteration's compute must close the
        // dangling compute and iteration spans of iteration 0 first.
        spans.enter(&mut rec, t(5), 0, Phase::Compute, 1);
        // A stray exit with no matching open is swallowed, not orphaned.
        spans.exit(&mut rec, t(6), 0, Phase::Communicate, 0);
        let got: Vec<(&str, SpanKind, u64)> = rec
            .events()
            .iter()
            .map(|te| match te.event {
                Event::SpanBegin {
                    kind, iteration, ..
                } => ("begin", kind, iteration),
                Event::SpanEnd {
                    kind, iteration, ..
                } => ("end", kind, iteration),
                _ => panic!("unexpected event"),
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("begin", SpanKind::Iteration, 0),
                ("begin", SpanKind::Compute, 0),
                ("end", SpanKind::Compute, 0),
                ("end", SpanKind::Iteration, 0),
                ("begin", SpanKind::Iteration, 1),
                ("begin", SpanKind::Compute, 1),
            ]
        );
    }
}
