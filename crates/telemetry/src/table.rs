//! Fixed-width text table rendering, shared by metrics/profiler summaries
//! and the experiment reports in `mlcc` (which re-exports it as
//! `mlcc::metrics::text_table`).

/// Renders rows as a fixed-width text table. The first row is treated as a
/// header and underlined. All rows must have the same number of columns.
pub fn text_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows[0].len();
    let mut widths = vec![0usize; cols];
    for row in rows {
        assert_eq!(row.len(), cols, "text_table: ragged rows");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(cell);
            for _ in cell.chars().count()..widths[i] + 2 {
                out.push(' ');
            }
        }
        out.push('\n');
        if ri == 0 {
            for (i, &w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(w));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_underlined_and_columns_align() {
        let t = text_table(&[
            vec!["metric".into(), "value".into()],
            vec!["ecn_marks_total".into(), "12".into()],
            vec!["x".into(), "3".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("metric"));
        assert!(lines[1].starts_with("---"));
        let h = lines[0].find("value").unwrap();
        let v = lines[2].find("12").unwrap();
        assert_eq!(h, v);
    }

    #[test]
    fn empty_input_renders_empty() {
        assert_eq!(text_table(&[]), "");
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        text_table(&[vec!["a".into(), "b".into()], vec!["c".into()]]);
    }
}
