//! Fixed-width text table rendering, shared by metrics/profiler summaries
//! and the experiment reports in `mlcc` (which re-exports it as
//! `mlcc::metrics::text_table`).

/// Renders rows as a fixed-width text table. The first row is treated as a
/// header and underlined. All rows must have the same number of columns.
pub fn text_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows[0].len();
    let mut widths = vec![0usize; cols];
    for row in rows {
        assert_eq!(row.len(), cols, "text_table: ragged rows");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(cell);
            for _ in cell.chars().count()..widths[i] + 2 {
                out.push(' ');
            }
        }
        out.push('\n');
        if ri == 0 {
            for (i, &w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(w));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Byte offsets where each column begins in a rendered header line
/// (columns are separated by at least two spaces; cells may contain
/// single spaces). Lets callers assert cell alignment against the header
/// instead of hard-coding absolute offsets.
pub fn column_starts(header: &str) -> Vec<usize> {
    let bytes = header.as_bytes();
    (0..bytes.len())
        .filter(|&i| {
            bytes[i] != b' ' && (i == 0 || (i >= 2 && bytes[i - 1] == b' ' && bytes[i - 2] == b' '))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_underlined_and_columns_align() {
        let t = text_table(&[
            vec!["metric".into(), "value".into()],
            vec!["ecn_marks_total".into(), "12".into()],
            vec!["x".into(), "3".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("metric"));
        assert!(lines[1].starts_with("---"));
        // Every data cell starts exactly where its header column starts,
        // wherever the width computation happens to put that column.
        let starts = column_starts(lines[0]);
        assert_eq!(starts.len(), 2);
        assert!(lines[0][starts[1]..].starts_with("value"));
        assert!(lines[2][starts[1]..].starts_with("12"));
        assert!(lines[3][starts[1]..].starts_with("3"));
    }

    #[test]
    fn column_starts_sees_through_single_spaces_in_cells() {
        let t = text_table(&[
            vec!["job name".into(), "median time".into()],
            vec!["a".into(), "1 ms".into()],
        ]);
        let header = t.lines().next().unwrap();
        let starts = column_starts(header);
        assert_eq!(
            starts.len(),
            2,
            "single spaces inside cells split: {starts:?}"
        );
        assert_eq!(starts[0], 0);
        assert!(header[starts[1]..].starts_with("median time"));
    }

    #[test]
    fn empty_input_renders_empty() {
        assert_eq!(text_table(&[]), "");
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        text_table(&[vec!["a".into(), "b".into()], vec!["c".into()]]);
    }
}
