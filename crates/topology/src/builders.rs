//! Pre-built cluster fabrics used by the experiments.

use crate::{LinkId, NodeId, NodeKind, Topology};
use simtime::{Bandwidth, Dur};

/// A dumbbell fabric plus the handles experiments need.
#[derive(Debug, Clone)]
pub struct Dumbbell {
    /// The fabric itself.
    pub topology: Topology,
    /// Hosts on the left side (senders in the Fig. 1 experiments).
    pub left_hosts: Vec<NodeId>,
    /// Hosts on the right side (receivers).
    pub right_hosts: Vec<NodeId>,
    /// The left→right bottleneck: the paper's `L1`.
    pub bottleneck: LinkId,
    /// The right→left direction of the bottleneck cable.
    pub bottleneck_reverse: LinkId,
}

/// Builds the paper's Fig. 1a testbed shape: `n` hosts on each side of a
/// single switch-to-switch cable, so that every left→right flow shares the
/// bottleneck link `L1`.
///
/// Host NIC links run at `edge`, the bottleneck at `core`. The paper's
/// testbed has 50 Gbps NICs and `L1` at the same rate, so congestion occurs
/// exactly when two jobs communicate at once — pass `edge == core` to
/// reproduce that regime.
///
/// # Panics
/// Panics if `n == 0`.
pub fn dumbbell(n: usize, edge: Bandwidth, core: Bandwidth, delay: Dur) -> Dumbbell {
    assert!(n > 0, "dumbbell: need at least one host per side");
    let mut t = Topology::new();
    let sw_l = t.add_node(NodeKind::TorSwitch, "tor-left");
    let sw_r = t.add_node(NodeKind::TorSwitch, "tor-right");
    let (bottleneck, bottleneck_reverse) = t.add_duplex(sw_l, sw_r, core, delay);
    let mut left_hosts = Vec::with_capacity(n);
    let mut right_hosts = Vec::with_capacity(n);
    for i in 0..n {
        let h = t.add_host(format!("left-{i}"), 8);
        t.add_duplex(h, sw_l, edge, delay);
        left_hosts.push(h);
    }
    for i in 0..n {
        let h = t.add_host(format!("right-{i}"), 8);
        t.add_duplex(sw_r, h, edge, delay);
        right_hosts.push(h);
    }
    Dumbbell {
        topology: t,
        left_hosts,
        right_hosts,
        bottleneck,
        bottleneck_reverse,
    }
}

/// A two-tier (ToR + spine) Clos fabric plus the handles experiments need.
#[derive(Debug, Clone)]
pub struct TwoTier {
    /// The fabric itself.
    pub topology: Topology,
    /// Hosts grouped by rack: `hosts[r][i]` is host `i` in rack `r`.
    pub hosts: Vec<Vec<NodeId>>,
    /// ToR switch of each rack.
    pub tors: Vec<NodeId>,
    /// Spine switches.
    pub spines: Vec<NodeId>,
    /// Uplink `tors[r] → spines[s]` link ids, indexed `[r][s]`.
    pub uplinks: Vec<Vec<LinkId>>,
}

/// Builds a `racks × hosts_per_rack` two-tier Clos with `spines` spine
/// switches. Host↔ToR links run at `edge`; ToR↔spine at `uplink`.
///
/// Used by the cluster-level compatibility experiments (§5): jobs whose
/// workers span racks compete on ToR uplinks, potentially with different
/// jobs on different links.
///
/// # Panics
/// Panics if any dimension is zero.
pub fn two_tier(
    racks: usize,
    hosts_per_rack: usize,
    spines: usize,
    edge: Bandwidth,
    uplink: Bandwidth,
    delay: Dur,
) -> TwoTier {
    assert!(
        racks > 0 && hosts_per_rack > 0 && spines > 0,
        "two_tier: zero dimension"
    );
    let mut t = Topology::new();
    let spine_ids: Vec<NodeId> = (0..spines)
        .map(|s| t.add_node(NodeKind::SpineSwitch, format!("spine-{s}")))
        .collect();
    let mut tors = Vec::with_capacity(racks);
    let mut hosts = Vec::with_capacity(racks);
    let mut uplinks = Vec::with_capacity(racks);
    for r in 0..racks {
        let tor = t.add_node(NodeKind::TorSwitch, format!("tor-{r}"));
        tors.push(tor);
        let mut rack_uplinks = Vec::with_capacity(spines);
        for &spine in &spine_ids {
            let (up, _down) = t.add_duplex(tor, spine, uplink, delay);
            rack_uplinks.push(up);
        }
        uplinks.push(rack_uplinks);
        let mut rack_hosts = Vec::with_capacity(hosts_per_rack);
        for i in 0..hosts_per_rack {
            let h = t.add_host(format!("host-{r}-{i}"), 8);
            t.add_duplex(h, tor, edge, delay);
            rack_hosts.push(h);
        }
        hosts.push(rack_hosts);
    }
    TwoTier {
        topology: t,
        hosts,
        tors,
        spines: spine_ids,
        uplinks,
    }
}

/// A three-tier k-ary fat-tree plus the handles experiments need.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// The fabric itself.
    pub topology: Topology,
    /// Hosts grouped by pod then edge switch:
    /// `hosts[pod][edge][i]`.
    pub hosts: Vec<Vec<Vec<NodeId>>>,
    /// Edge switches per pod: `edges[pod][e]`.
    pub edges: Vec<Vec<NodeId>>,
    /// Aggregation switches per pod: `aggs[pod][a]`.
    pub aggs: Vec<Vec<NodeId>>,
    /// Core switches.
    pub cores: Vec<NodeId>,
}

/// Builds a `k`-ary fat-tree (Al-Fares et al.): `k` pods, each with `k/2`
/// edge and `k/2` aggregation switches; `k/2` hosts per edge switch;
/// `(k/2)²` core switches. Every link runs at `rate`. Full bisection
/// bandwidth by construction — the fabric where ECMP spreading and
/// multi-path compatibility questions get interesting.
///
/// # Panics
/// Panics unless `k` is even and ≥ 2.
pub fn fat_tree(k: usize, rate: Bandwidth, delay: Dur) -> FatTree {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat_tree: k must be even and ≥ 2"
    );
    let half = k / 2;
    let mut t = Topology::new();
    let cores: Vec<NodeId> = (0..half * half)
        .map(|c| t.add_node(NodeKind::SpineSwitch, format!("core-{c}")))
        .collect();
    let mut hosts = Vec::with_capacity(k);
    let mut edges = Vec::with_capacity(k);
    let mut aggs = Vec::with_capacity(k);
    for p in 0..k {
        let pod_aggs: Vec<NodeId> = (0..half)
            .map(|a| t.add_node(NodeKind::SpineSwitch, format!("agg-{p}-{a}")))
            .collect();
        // Aggregation a connects to cores [a·k/2, (a+1)·k/2).
        for (a, &agg) in pod_aggs.iter().enumerate() {
            for c in 0..half {
                t.add_duplex(agg, cores[a * half + c], rate, delay);
            }
        }
        let mut pod_edges = Vec::with_capacity(half);
        let mut pod_hosts = Vec::with_capacity(half);
        for e in 0..half {
            let edge = t.add_node(NodeKind::TorSwitch, format!("edge-{p}-{e}"));
            for &agg in &pod_aggs {
                t.add_duplex(edge, agg, rate, delay);
            }
            let mut edge_hosts = Vec::with_capacity(half);
            for h in 0..half {
                let host = t.add_host(format!("host-{p}-{e}-{h}"), 8);
                t.add_duplex(host, edge, rate, delay);
                edge_hosts.push(host);
            }
            pod_edges.push(edge);
            pod_hosts.push(edge_hosts);
        }
        hosts.push(pod_hosts);
        edges.push(pod_edges);
        aggs.push(pod_aggs);
    }
    FatTree {
        topology: t,
        hosts,
        edges,
        aggs,
        cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowKey;

    fn gbps(g: u64) -> Bandwidth {
        Bandwidth::from_gbps(g)
    }

    #[test]
    fn dumbbell_shares_bottleneck() {
        let d = dumbbell(2, gbps(50), gbps(50), Dur::from_micros(1));
        let t = &d.topology;
        assert_eq!(d.left_hosts.len(), 2);
        assert_eq!(d.right_hosts.len(), 2);
        // Every left→right route crosses L1.
        for (i, &src) in d.left_hosts.iter().enumerate() {
            let dst = d.right_hosts[i];
            let path = t.route(FlowKey { src, dst, tag: 0 }).unwrap();
            assert!(path.uses(d.bottleneck), "flow {i} must cross L1");
            assert!(!path.uses(d.bottleneck_reverse));
            assert_eq!(path.len(), 3); // host→torL, torL→torR, torR→host
        }
        // Reverse traffic uses the reverse direction only.
        let back = t
            .route(FlowKey {
                src: d.right_hosts[0],
                dst: d.left_hosts[0],
                tag: 0,
            })
            .unwrap();
        assert!(back.uses(d.bottleneck_reverse));
        assert!(!back.uses(d.bottleneck));
    }

    #[test]
    fn dumbbell_capacities() {
        let d = dumbbell(1, gbps(100), gbps(50), Dur::ZERO);
        let t = &d.topology;
        assert_eq!(t.link(d.bottleneck).capacity, gbps(50));
        let h = d.left_hosts[0];
        let uplink = t.out_links(h)[0];
        assert_eq!(t.link(uplink).capacity, gbps(100));
    }

    #[test]
    fn two_tier_shape() {
        let f = two_tier(3, 4, 2, gbps(100), gbps(50), Dur::from_micros(1));
        let t = &f.topology;
        assert_eq!(f.hosts.len(), 3);
        assert_eq!(f.hosts[0].len(), 4);
        assert_eq!(f.tors.len(), 3);
        assert_eq!(f.spines.len(), 2);
        // 2 spines * 3 racks duplex + 12 host duplex = (6 + 12) * 2 links.
        assert_eq!(t.link_count(), (6 + 12) * 2);
        // Intra-rack traffic: 2 hops, never touches a spine uplink.
        let p = t
            .route(FlowKey {
                src: f.hosts[0][0],
                dst: f.hosts[0][1],
                tag: 0,
            })
            .unwrap();
        assert_eq!(p.len(), 2);
        // Cross-rack traffic: 4 hops, crosses some rack-0 uplink.
        let p = t
            .route(FlowKey {
                src: f.hosts[0][0],
                dst: f.hosts[2][1],
                tag: 0,
            })
            .unwrap();
        assert_eq!(p.len(), 4);
        assert!(f.uplinks[0].iter().any(|&u| p.uses(u)));
        // ECMP: both spines carry cross-rack flows across many tags.
        let used: std::collections::HashSet<LinkId> = (0..64)
            .map(|tag| {
                let p = t
                    .route(FlowKey {
                        src: f.hosts[0][0],
                        dst: f.hosts[2][1],
                        tag,
                    })
                    .unwrap();
                *f.uplinks[0].iter().find(|&&u| p.uses(u)).unwrap()
            })
            .collect();
        assert_eq!(used.len(), 2);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn two_tier_rejects_zero() {
        let _ = two_tier(0, 1, 1, gbps(1), gbps(1), Dur::ZERO);
    }

    #[test]
    fn fat_tree_shape_and_routing() {
        let k = 4;
        let f = fat_tree(k, gbps(50), Dur::from_micros(1));
        let t = &f.topology;
        // k-ary fat-tree: k³/4 hosts, (k/2)² cores, k·k/2 edge and agg.
        assert_eq!(t.hosts().len(), k * k * k / 4);
        assert_eq!(f.cores.len(), (k / 2) * (k / 2));
        assert_eq!(f.edges.iter().map(|p| p.len()).sum::<usize>(), k * k / 2);
        assert_eq!(f.aggs.iter().map(|p| p.len()).sum::<usize>(), k * k / 2);

        // Same-edge hosts: 2 hops.
        let (a, b) = (f.hosts[0][0][0], f.hosts[0][0][1]);
        assert_eq!(t.hop_distance(a, b), Some(2));
        // Same-pod, different-edge: 4 hops with k/2 ECMP choices.
        let c = f.hosts[0][1][0];
        assert_eq!(t.hop_distance(a, c), Some(4));
        assert_eq!(t.ecmp_paths(a, c).len(), k / 2);
        // Cross-pod: 6 hops with (k/2)² ECMP choices.
        let d = f.hosts[3][1][1];
        assert_eq!(t.hop_distance(a, d), Some(6));
        assert_eq!(t.ecmp_paths(a, d).len(), (k / 2) * (k / 2));
        // Hashed routing spreads across multiple core paths.
        let distinct: std::collections::HashSet<_> = (0..128)
            .map(|tag| {
                t.route(FlowKey {
                    src: a,
                    dst: d,
                    tag,
                })
                .unwrap()
            })
            .collect();
        assert!(distinct.len() >= 3, "ECMP spread {}", distinct.len());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fat_tree_rejects_odd_k() {
        let _ = fat_tree(3, gbps(1), Dur::ZERO);
    }
}
