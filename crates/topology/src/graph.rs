//! The topology graph: nodes, directed links, adjacency.

use simtime::{Bandwidth, Dur};
use std::fmt;

/// Identifier of a node in a [`Topology`] (index into its node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a directed link in a [`Topology`] (index into its link
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// What a node is: an end-host with accelerators, or a switch at some tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end-host (server) carrying `gpus` accelerators.
    Host {
        /// Number of GPUs installed in the server.
        gpus: u8,
    },
    /// A top-of-rack switch.
    TorSwitch,
    /// An aggregation / spine switch.
    SpineSwitch,
}

/// A node in the topology.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's identifier.
    pub id: NodeId,
    /// Host or switch role.
    pub kind: NodeKind,
    /// Human-readable name (e.g. `"host-3"`, `"tor-0"`).
    pub name: String,
}

impl Node {
    /// `true` if this node is an end-host.
    pub fn is_host(&self) -> bool {
        matches!(self.kind, NodeKind::Host { .. })
    }
}

/// A directed, capacity-labelled link.
#[derive(Debug, Clone)]
pub struct Link {
    /// The link's identifier.
    pub id: LinkId,
    /// Transmitting endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
    /// Line rate.
    pub capacity: Bandwidth,
    /// One-way propagation delay.
    pub delay: Dur,
}

/// A directed multigraph of hosts, switches and links.
///
/// Construction is additive only (no removal): experiments build a fabric
/// once and route over it. Node and link ids are dense indices, so lookups
/// are O(1) and per-link state elsewhere in the workspace can live in plain
/// vectors indexed by `LinkId`.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing link ids per node.
    out_links: Vec<Vec<LinkId>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            kind,
            name: name.into(),
        });
        self.out_links.push(Vec::new());
        id
    }

    /// Adds a host with `gpus` GPUs.
    pub fn add_host(&mut self, name: impl Into<String>, gpus: u8) -> NodeId {
        self.add_node(NodeKind::Host { gpus }, name)
    }

    /// Adds a single directed link and returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist, the endpoints coincide, or
    /// the capacity is zero.
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: Bandwidth,
        delay: Dur,
    ) -> LinkId {
        assert!(
            (src.0 as usize) < self.nodes.len() && (dst.0 as usize) < self.nodes.len(),
            "add_link: unknown endpoint"
        );
        assert_ne!(src, dst, "add_link: self-loop");
        assert!(!capacity.is_zero(), "add_link: zero capacity");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            src,
            dst,
            capacity,
            delay,
        });
        self.out_links[src.0 as usize].push(id);
        id
    }

    /// Adds a full-duplex cable as two directed links; returns
    /// `(a→b, b→a)`.
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: Bandwidth,
        delay: Dur,
    ) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, capacity, delay);
        let ba = self.add_link(b, a, capacity, delay);
        (ab, ba)
    }

    /// The node with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// The link with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Outgoing links of `node`.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out_links[node.0 as usize]
    }

    /// Ids of all end-hosts.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_host())
            .map(|n| n.id)
            .collect()
    }

    /// Looks a node up by name (O(n); intended for tests and examples).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbps(g: u64) -> Bandwidth {
        Bandwidth::from_gbps(g)
    }

    #[test]
    fn build_and_query() {
        let mut t = Topology::new();
        let a = t.add_host("a", 8);
        let b = t.add_host("b", 8);
        let sw = t.add_node(NodeKind::TorSwitch, "tor");
        let l1 = t.add_link(a, sw, gbps(50), Dur::from_micros(1));
        let l2 = t.add_link(sw, b, gbps(50), Dur::from_micros(1));
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.link(l1).src, a);
        assert_eq!(t.link(l2).dst, b);
        assert_eq!(t.out_links(a), &[l1]);
        assert_eq!(t.out_links(b), &[] as &[LinkId]);
        assert_eq!(t.hosts(), vec![a, b]);
        assert_eq!(t.node_by_name("tor"), Some(sw));
        assert_eq!(t.node_by_name("nope"), None);
        assert!(t.node(a).is_host());
        assert!(!t.node(sw).is_host());
    }

    #[test]
    fn duplex_adds_both_directions() {
        let mut t = Topology::new();
        let a = t.add_host("a", 1);
        let b = t.add_host("b", 1);
        let (ab, ba) = t.add_duplex(a, b, gbps(10), Dur::ZERO);
        assert_eq!(t.link(ab).src, a);
        assert_eq!(t.link(ab).dst, b);
        assert_eq!(t.link(ba).src, b);
        assert_eq!(t.link(ba).dst, a);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_host("a", 1);
        t.add_link(a, a, gbps(1), Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn zero_capacity_rejected() {
        let mut t = Topology::new();
        let a = t.add_host("a", 1);
        let b = t.add_host("b", 1);
        t.add_link(a, b, Bandwidth::ZERO, Dur::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown endpoint")]
    fn dangling_endpoint_rejected() {
        let mut t = Topology::new();
        let a = t.add_host("a", 1);
        t.add_link(a, NodeId(99), gbps(1), Dur::ZERO);
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(1).to_string(), "L1");
    }
}
