//! Cluster network topology: hosts, switches, links, and routing.
//!
//! A [`Topology`] is a directed multigraph of [`Node`]s (hosts carrying
//! GPUs, and switches) connected by capacity-labelled [`Link`]s. Full-duplex
//! cables are modelled as two independent directed links, because congestion
//! in ML clusters is directional: an allreduce saturates a host's uplink
//! while its downlink stays loose (or vice versa).
//!
//! Routing is shortest-path with ECMP: [`Topology::ecmp_paths`] enumerates
//! all shortest paths and [`Topology::route`] picks one deterministically by
//! flow hash, mirroring how a real fabric's 5-tuple hash pins a flow to one
//! path — which is why the paper's scheduler must learn routes before it can
//! reason about which jobs share a link (§4).
//!
//! Pre-built fabrics used throughout the workspace:
//!
//! * [`builders::dumbbell`] — the paper's Fig. 1a testbed: sender hosts
//!   whose traffic funnels through one bottleneck link `L1`;
//! * [`builders::two_tier`] — a ToR/spine Clos used for the cluster-level
//!   compatibility experiments (§5);
//! * [`builders::fat_tree`] — a three-tier k-ary fat-tree with full ECMP
//!   spreading across core switches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod partition;
mod routing;
mod schedule;

/// Pre-built cluster fabrics.
pub mod builders;

pub use graph::{Link, LinkId, Node, NodeId, NodeKind, Topology};
pub use partition::{partition, subgraph, ShardPlan};
pub use routing::{FlowKey, Path};
pub use schedule::LinkSchedule;
