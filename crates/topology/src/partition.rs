//! Link-disjoint job partitioning for sharded simulation.
//!
//! Two jobs conflict when their routes share a directed link: a shared
//! bottleneck couples their rate dynamics, so they must be simulated by the
//! same shard. [`partition`] builds the conflict graph's connected
//! components with a union-find keyed by link id — jobs in different
//! components touch disjoint link sets and can be advanced independently
//! with an unbounded safe horizon (conservative parallel DES lookahead is
//! infinite between shards that share no resource).
//!
//! The resulting [`ShardPlan`] is a pure function of the per-job link sets:
//! it never depends on how many worker threads will execute it, which is
//! what keeps sharded output byte-identical at any `--shards N`.

use crate::{LinkId, NodeId, Topology};
use std::collections::HashMap;

/// A deterministic grouping of jobs into link-disjoint components.
///
/// Components are ordered by their smallest member job index, and job
/// indices within a component are ascending, so the plan — and everything
/// derived from it, including merged telemetry — is independent of hash
/// iteration order and thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    components: Vec<Vec<usize>>,
    component_of: Vec<usize>,
}

impl ShardPlan {
    /// A plan that keeps all `jobs` jobs in one component (the unshardable
    /// fallback, also used when sharding is disabled).
    pub fn single(jobs: usize) -> ShardPlan {
        ShardPlan {
            components: if jobs == 0 {
                Vec::new()
            } else {
                vec![(0..jobs).collect()]
            },
            component_of: vec![0; jobs],
        }
    }

    /// The link-disjoint components, each a sorted list of job indices.
    pub fn components(&self) -> &[Vec<usize>] {
        &self.components
    }

    /// Number of link-disjoint components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Total number of jobs covered by the plan.
    pub fn num_jobs(&self) -> usize {
        self.component_of.len()
    }

    /// The component index a job belongs to.
    pub fn component_of(&self, job: usize) -> usize {
        self.component_of[job]
    }

    /// Fraction of jobs in the largest component, in `[0, 1]`; `1.0` means
    /// the scenario is unshardable (or empty). The closer to `1/k` for `k`
    /// components, the better the plan balances.
    pub fn largest_share(&self) -> f64 {
        let total = self.component_of.len();
        if total == 0 {
            return 1.0;
        }
        let largest = self.components.iter().map(Vec::len).max().unwrap_or(0);
        largest as f64 / total as f64
    }
}

/// Partitions jobs into link-disjoint components.
///
/// `link_sets[j]` is the set of directed links job `j`'s flows traverse
/// (duplicates allowed; order irrelevant). Jobs whose link sets intersect —
/// directly or transitively — land in the same component. A job with an
/// empty link set conflicts with nobody and gets its own component.
pub fn partition(link_sets: &[Vec<LinkId>]) -> ShardPlan {
    let n = link_sets.len();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }

    // Union every job that uses a link with the first job seen on it.
    let mut owner: HashMap<LinkId, usize> = HashMap::new();
    for (j, links) in link_sets.iter().enumerate() {
        for &l in links {
            match owner.get(&l) {
                Some(&first) => {
                    let (a, b) = (find(&mut parent, first), find(&mut parent, j));
                    if a != b {
                        // Smaller root wins, so roots stay the minimum job
                        // index of their component.
                        let (lo, hi) = (a.min(b), a.max(b));
                        parent[hi] = lo;
                    }
                }
                None => {
                    owner.insert(l, j);
                }
            }
        }
    }

    // Roots are component minima; enumerate jobs in order to get components
    // sorted by smallest member with ascending members.
    let mut index_of_root: HashMap<usize, usize> = HashMap::new();
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut component_of = vec![0usize; n];
    for (j, slot) in component_of.iter_mut().enumerate() {
        let root = find(&mut parent, j);
        let idx = *index_of_root.entry(root).or_insert_with(|| {
            components.push(Vec::new());
            components.len() - 1
        });
        components[idx].push(j);
        *slot = idx;
    }

    ShardPlan {
        components,
        component_of,
    }
}

/// Extracts the sub-topology induced by a set of links, renumbered
/// densely: the returned topology's link `k` is a copy (same endpoints,
/// capacity, delay) of the `k`-th smallest distinct id in `links`, and
/// only nodes touched by those links are carried over (in first-use
/// order). The second return value is that ascending id list — the
/// local→original link mapping, ready to use as a telemetry remap table.
///
/// Shards run on these subgraphs so per-solve cost scales with the
/// component, not the whole fabric; determinism follows from the sorted
/// link order (independent of `links`'s order and of thread count).
pub fn subgraph(topo: &Topology, links: &[LinkId]) -> (Topology, Vec<LinkId>) {
    let mut ids: Vec<LinkId> = links.to_vec();
    ids.sort_unstable();
    ids.dedup();
    let mut sub = Topology::new();
    let mut node_map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut local_node = |sub: &mut Topology, id: NodeId| {
        *node_map.entry(id).or_insert_with(|| {
            let n = topo.node(id);
            sub.add_node(n.kind, n.name.clone())
        })
    };
    for &id in &ids {
        let link = topo.link(id);
        let src = local_node(&mut sub, link.src);
        let dst = local_node(&mut sub, link.dst);
        sub.add_link(src, dst, link.capacity, link.delay);
    }
    (sub, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;
    use simtime::{Bandwidth, Dur};

    fn l(id: u32) -> LinkId {
        LinkId(id)
    }

    #[test]
    fn disjoint_jobs_split_into_singletons() {
        let plan = partition(&[vec![l(0)], vec![l(1)], vec![l(2)]]);
        assert_eq!(plan.num_components(), 3);
        assert_eq!(plan.components(), &[vec![0], vec![1], vec![2]]);
        assert!((plan.largest_share() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shared_link_merges_transitively() {
        // 0–1 share L0, 1–2 share L1: all three coupled; 3 is alone.
        let plan = partition(&[vec![l(0)], vec![l(0), l(1)], vec![l(1)], vec![l(9)]]);
        assert_eq!(plan.components(), &[vec![0, 1, 2], vec![3]]);
        assert_eq!(plan.component_of(2), 0);
        assert_eq!(plan.component_of(3), 1);
        assert!((plan.largest_share() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_share_one_link_collapses_to_single_component() {
        let sets: Vec<Vec<LinkId>> = (0..8).map(|i| vec![l(i), l(100)]).collect();
        let plan = partition(&sets);
        assert_eq!(plan.num_components(), 1);
        assert_eq!(plan, ShardPlan::single(8));
        assert_eq!(plan.largest_share(), 1.0);
    }

    #[test]
    fn empty_link_set_is_its_own_component() {
        let plan = partition(&[vec![l(0)], vec![], vec![l(0)]]);
        assert_eq!(plan.components(), &[vec![0, 2], vec![1]]);
    }

    #[test]
    fn ordering_is_independent_of_link_ids() {
        // High link ids first must not change component order.
        let plan = partition(&[vec![l(500)], vec![l(2)], vec![l(500)]]);
        assert_eq!(plan.components(), &[vec![0, 2], vec![1]]);
    }

    #[test]
    fn subgraph_renumbers_links_and_nodes_densely() {
        let mut topo = Topology::new();
        let a = topo.add_host("a", 1);
        let b = topo.add_node(NodeKind::TorSwitch, "t");
        let c = topo.add_host("c", 1);
        let ab = topo.add_link(a, b, Bandwidth::from_gbps(100), Dur::ZERO);
        let _bc = topo.add_link(b, c, Bandwidth::from_gbps(50), Dur::from_micros(2));
        let ba = topo.add_link(b, a, Bandwidth::from_gbps(25), Dur::ZERO);
        // Request out of order, with a duplicate; bc is left out.
        let (sub, ids) = subgraph(&topo, &[ba, ab, ba]);
        assert_eq!(ids, vec![ab, ba]);
        assert_eq!(sub.link_count(), 2);
        assert_eq!(sub.node_count(), 2); // c is not carried over
        let l0 = sub.link(LinkId(0));
        assert_eq!(l0.capacity, Bandwidth::from_gbps(100));
        assert_eq!(sub.node(l0.src).name, "a");
        assert_eq!(sub.node(l0.dst).name, "t");
        let l1 = sub.link(LinkId(1));
        assert_eq!(l1.capacity, Bandwidth::from_gbps(25));
        assert_eq!(sub.node(l1.src).name, "t");
        assert_eq!(sub.node(l1.dst).name, "a");
    }

    #[test]
    fn subgraph_of_all_links_is_an_identity_copy() {
        let mut topo = Topology::new();
        let a = topo.add_host("a", 1);
        let b = topo.add_host("b", 1);
        let ab = topo.add_link(a, b, Bandwidth::from_gbps(10), Dur::ZERO);
        let ba = topo.add_link(b, a, Bandwidth::from_gbps(10), Dur::ZERO);
        let (sub, ids) = subgraph(&topo, &[ab, ba]);
        assert_eq!(ids, vec![ab, ba]);
        assert_eq!(sub.link_count(), topo.link_count());
        assert_eq!(sub.node_count(), topo.node_count());
    }

    #[test]
    fn empty_plan() {
        let plan = partition(&[]);
        assert_eq!(plan.num_components(), 0);
        assert_eq!(plan.num_jobs(), 0);
        assert_eq!(plan.largest_share(), 1.0);
        assert_eq!(plan, ShardPlan::single(0));
    }
}
