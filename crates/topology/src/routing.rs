//! Shortest-path enumeration and ECMP route selection.

use crate::{LinkId, NodeId, Topology};
use std::collections::VecDeque;

/// A loop-free path through the fabric, as the sequence of directed links
/// traversed from source host to destination host.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    links: Vec<LinkId>,
}

impl Path {
    /// A path over the given links (assumed contiguous; verified by the
    /// routing code that constructs them).
    pub fn new(links: Vec<LinkId>) -> Path {
        Path { links }
    }

    /// The links traversed, in order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` for a zero-hop path (source == destination).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// `true` if the path traverses `link`.
    pub fn uses(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }
}

/// Identity of a flow for ECMP hashing — the simulator's stand-in for the
/// 5-tuple a real switch hashes. Flows with the same key always take the
/// same path; distinct keys spread across equal-cost paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Disambiguator standing in for ports (e.g. the flow's queue-pair id).
    pub tag: u64,
}

impl FlowKey {
    /// FNV-1a over the key fields: cheap, deterministic, well-spread.
    /// Delegates to the workspace's canonical hasher
    /// ([`simtime::hash::Fnv64`]) so every layer fingerprints bytes the
    /// same way.
    pub fn hash64(&self) -> u64 {
        let mut h = simtime::hash::Fnv64::new();
        h.write_u64(self.src.0 as u64);
        h.write_u64(self.dst.0 as u64);
        h.write_u64(self.tag);
        h.finish()
    }
}

impl Topology {
    /// All shortest paths (by hop count) from `src` to `dst`, in a
    /// deterministic order.
    ///
    /// Returns an empty vector if `dst` is unreachable; returns one empty
    /// path if `src == dst`.
    pub fn ecmp_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        if src == dst {
            return vec![Path::new(Vec::new())];
        }
        // BFS layering from src.
        let n = self.node_count();
        let mut dist = vec![u32::MAX; n];
        dist[src.0 as usize] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for &lid in self.out_links(u) {
                let v = self.link(lid).dst;
                if dist[v.0 as usize] == u32::MAX {
                    dist[v.0 as usize] = dist[u.0 as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        if dist[dst.0 as usize] == u32::MAX {
            return Vec::new();
        }
        // DFS forward along strictly-increasing BFS layers enumerates all
        // shortest paths. Out-link order makes the enumeration deterministic.
        let mut paths = Vec::new();
        let mut stack: Vec<LinkId> = Vec::new();
        self.enumerate(src, dst, &dist, &mut stack, &mut paths);
        paths
    }

    fn enumerate(
        &self,
        u: NodeId,
        dst: NodeId,
        dist: &[u32],
        stack: &mut Vec<LinkId>,
        out: &mut Vec<Path>,
    ) {
        if u == dst {
            out.push(Path::new(stack.clone()));
            return;
        }
        for &lid in self.out_links(u) {
            let v = self.link(lid).dst;
            if dist[v.0 as usize] == dist[u.0 as usize] + 1 {
                stack.push(lid);
                self.enumerate(v, dst, dist, stack, out);
                stack.pop();
            }
        }
    }

    /// The ECMP-selected path for `flow`: hash the flow key over the set of
    /// shortest paths. Returns `None` if the destination is unreachable.
    pub fn route(&self, flow: FlowKey) -> Option<Path> {
        let paths = self.ecmp_paths(flow.src, flow.dst);
        if paths.is_empty() {
            return None;
        }
        let idx = (flow.hash64() % paths.len() as u64) as usize;
        Some(paths[idx].clone())
    }

    /// Hop-count distance from `src` to `dst`, or `None` if unreachable.
    pub fn hop_distance(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        self.ecmp_paths(src, dst).first().map(|p| p.len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;
    use simtime::{Bandwidth, Dur};

    fn gbps(g: u64) -> Bandwidth {
        Bandwidth::from_gbps(g)
    }

    /// host0 → tor0 → {spine0, spine1} → tor1 → host1 : two equal-cost paths.
    fn diamond() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let h0 = t.add_host("h0", 8);
        let h1 = t.add_host("h1", 8);
        let tor0 = t.add_node(NodeKind::TorSwitch, "tor0");
        let tor1 = t.add_node(NodeKind::TorSwitch, "tor1");
        let s0 = t.add_node(NodeKind::SpineSwitch, "s0");
        let s1 = t.add_node(NodeKind::SpineSwitch, "s1");
        for (a, b) in [
            (h0, tor0),
            (tor0, s0),
            (tor0, s1),
            (s0, tor1),
            (s1, tor1),
            (tor1, h1),
        ] {
            t.add_duplex(a, b, gbps(50), Dur::from_micros(1));
        }
        (t, h0, h1)
    }

    #[test]
    fn enumerates_all_shortest_paths() {
        let (t, h0, h1) = diamond();
        let paths = t.ecmp_paths(h0, h1);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 4);
            // Contiguity: each link starts where the previous ended.
            let mut at = h0;
            for &lid in p.links() {
                assert_eq!(t.link(lid).src, at);
                at = t.link(lid).dst;
            }
            assert_eq!(at, h1);
        }
        assert_ne!(paths[0], paths[1]);
        assert_eq!(t.hop_distance(h0, h1), Some(4));
    }

    #[test]
    fn route_is_deterministic_and_spreads() {
        let (t, h0, h1) = diamond();
        let key = |tag| FlowKey {
            src: h0,
            dst: h1,
            tag,
        };
        let p1 = t.route(key(0)).unwrap();
        let p2 = t.route(key(0)).unwrap();
        assert_eq!(p1, p2, "same key must pin the same path");
        // Across many tags, both equal-cost paths get used.
        let distinct: std::collections::HashSet<Path> =
            (0..64).map(|tag| t.route(key(tag)).unwrap()).collect();
        assert_eq!(distinct.len(), 2, "ECMP should spread over both paths");
    }

    #[test]
    fn unreachable_and_trivial() {
        let mut t = Topology::new();
        let a = t.add_host("a", 1);
        let b = t.add_host("b", 1);
        // No links: unreachable.
        assert!(t.ecmp_paths(a, b).is_empty());
        assert_eq!(
            t.route(FlowKey {
                src: a,
                dst: b,
                tag: 0
            }),
            None
        );
        assert_eq!(t.hop_distance(a, b), None);
        // Self-route: one empty path.
        let self_paths = t.ecmp_paths(a, a);
        assert_eq!(self_paths.len(), 1);
        assert!(self_paths[0].is_empty());
    }

    #[test]
    fn one_way_links_are_directional() {
        let mut t = Topology::new();
        let a = t.add_host("a", 1);
        let b = t.add_host("b", 1);
        t.add_link(a, b, gbps(10), Dur::ZERO);
        assert_eq!(t.ecmp_paths(a, b).len(), 1);
        assert!(t.ecmp_paths(b, a).is_empty());
    }

    #[test]
    fn path_uses() {
        let (t, h0, h1) = diamond();
        let p = t
            .route(FlowKey {
                src: h0,
                dst: h1,
                tag: 3,
            })
            .unwrap();
        let first = p.links()[0];
        assert!(p.uses(first));
        // The host uplink must be the first hop for every path.
        assert_eq!(t.link(first).src, h0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::NodeKind;
    use proptest::prelude::*;
    use simtime::{Bandwidth, Dur};

    /// Random two-tier-ish fabric: `racks` ToRs with `hosts` hosts each,
    /// `spines` spines, full ToR↔spine mesh.
    fn build(racks: usize, hosts: usize, spines: usize) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let spine_ids: Vec<NodeId> = (0..spines)
            .map(|s| t.add_node(NodeKind::SpineSwitch, format!("s{s}")))
            .collect();
        let mut all_hosts = Vec::new();
        for r in 0..racks {
            let tor = t.add_node(NodeKind::TorSwitch, format!("t{r}"));
            for &sp in &spine_ids {
                t.add_duplex(tor, sp, Bandwidth::from_gbps(50), Dur::ZERO);
            }
            for h in 0..hosts {
                let host = t.add_host(format!("h{r}-{h}"), 8);
                t.add_duplex(host, tor, Bandwidth::from_gbps(50), Dur::ZERO);
                all_hosts.push(host);
            }
        }
        (t, all_hosts)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every ECMP path between two hosts is contiguous, loop-free, and
        /// of the common shortest length; the hashed route is one of them.
        #[test]
        fn ecmp_paths_are_valid(
            racks in 1usize..4,
            hosts in 1usize..3,
            spines in 1usize..4,
            tag in 0u64..1000,
        ) {
            let (t, all_hosts) = build(racks, hosts, spines);
            prop_assume!(all_hosts.len() >= 2);
            let src = all_hosts[0];
            let dst = *all_hosts.last().unwrap();
            let paths = t.ecmp_paths(src, dst);
            prop_assert!(!paths.is_empty(), "mesh fabric must connect hosts");
            let len = paths[0].len();
            for p in &paths {
                prop_assert_eq!(p.len(), len, "all ECMP paths equal length");
                // Contiguity and loop-freedom.
                let mut at = src;
                let mut seen = std::collections::HashSet::new();
                prop_assert!(seen.insert(at));
                for &lid in p.links() {
                    prop_assert_eq!(t.link(lid).src, at);
                    at = t.link(lid).dst;
                    prop_assert!(seen.insert(at), "loop through {at}");
                }
                prop_assert_eq!(at, dst);
            }
            // Hashed route is deterministic and a member of the set.
            let key = FlowKey { src, dst, tag };
            let r1 = t.route(key).unwrap();
            let r2 = t.route(key).unwrap();
            prop_assert_eq!(&r1, &r2);
            prop_assert!(paths.contains(&r1));
            // Cross-rack traffic uses exactly the expected hop count:
            // 2 hops intra-rack, 4 cross-rack.
            let same_rack = racks == 1;
            prop_assert_eq!(len, if same_rack { 2 } else { 4 });
        }
    }
}
