//! [`LinkSchedule`]: piecewise-constant time-varying link capacity.
//!
//! Fault injection degrades links — an optic running hot drops to a
//! fraction of nominal bandwidth, a flapping port oscillates between "up"
//! and "effectively down". Engines model this as a multiplier on the
//! link's nominal capacity that changes at scheduled instants: between
//! change points the capacity is constant, so fluid allocators stay
//! piecewise-stationary and the rate/packet steppers only need to clamp
//! their step size to the next change point.
//!
//! A "down" flap is floored at [`LinkSchedule::MIN_MULTIPLIER`] rather
//! than zero: allocators and serialization-delay math stay well-posed, and
//! a 1 %-capacity link is indistinguishable from an outage at the
//! timescales simulated here.

use simtime::Time;

/// A piecewise-constant capacity multiplier for one directed link.
///
/// The multiplier is `1.0` before the first change point; each change
/// `(t, m)` sets it to `m` from `t` onwards. Change points are strictly
/// ascending in time and multipliers lie in
/// `[LinkSchedule::MIN_MULTIPLIER, 1.0]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkSchedule {
    changes: Vec<(Time, f64)>,
}

impl LinkSchedule {
    /// Multipliers below this floor are clamped up to it. Keeps every
    /// engine's division-by-capacity well-posed while still modelling an
    /// outage (1 % of a 50 Gbps link is a 100× slowdown).
    pub const MIN_MULTIPLIER: f64 = 0.01;

    /// The identity schedule: capacity stays at nominal forever.
    pub fn identity() -> LinkSchedule {
        LinkSchedule {
            changes: Vec::new(),
        }
    }

    /// A schedule from explicit change points.
    ///
    /// Multipliers are clamped into `[MIN_MULTIPLIER, 1.0]`.
    ///
    /// # Panics
    /// Panics if change times are not strictly ascending, or a multiplier
    /// is not finite.
    pub fn new(changes: Vec<(Time, f64)>) -> LinkSchedule {
        for w in changes.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "LinkSchedule: change times must be strictly ascending"
            );
        }
        let changes = changes
            .into_iter()
            .map(|(t, m)| {
                assert!(m.is_finite(), "LinkSchedule: non-finite multiplier {m}");
                (t, m.clamp(Self::MIN_MULTIPLIER, 1.0))
            })
            .collect();
        LinkSchedule { changes }
    }

    /// A single degradation window: capacity × `factor` in `[from, to)`.
    ///
    /// # Panics
    /// Panics unless `from < to`.
    pub fn degraded(from: Time, to: Time, factor: f64) -> LinkSchedule {
        LinkSchedule::new(vec![(from, factor), (to, 1.0)])
    }

    /// `true` if this schedule never changes the capacity.
    pub fn is_identity(&self) -> bool {
        self.changes.iter().all(|&(_, m)| m == 1.0)
    }

    /// The capacity multiplier in effect at instant `t`.
    pub fn multiplier_at(&self, t: Time) -> f64 {
        let idx = self.changes.partition_point(|&(ct, _)| ct <= t);
        if idx == 0 {
            1.0
        } else {
            self.changes[idx - 1].1
        }
    }

    /// The first change instant strictly after `t`, if any.
    pub fn next_change_after(&self, t: Time) -> Option<Time> {
        let idx = self.changes.partition_point(|&(ct, _)| ct <= t);
        self.changes.get(idx).map(|&(ct, _)| ct)
    }

    /// The raw change points `(t, multiplier)`, ascending in time.
    pub fn changes(&self) -> &[(Time, f64)] {
        &self.changes
    }

    /// The smallest multiplier the schedule ever applies.
    pub fn min_multiplier(&self) -> f64 {
        self.changes.iter().map(|&(_, m)| m).fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Dur;

    fn at(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn identity_is_flat() {
        let s = LinkSchedule::identity();
        assert!(s.is_identity());
        assert_eq!(s.multiplier_at(at(0)), 1.0);
        assert_eq!(s.multiplier_at(at(10_000)), 1.0);
        assert_eq!(s.next_change_after(at(0)), None);
    }

    #[test]
    fn degradation_window_applies_and_lifts() {
        let s = LinkSchedule::degraded(at(100), at(200), 0.5);
        assert!(!s.is_identity());
        assert_eq!(s.multiplier_at(at(99)), 1.0);
        assert_eq!(s.multiplier_at(at(100)), 0.5);
        assert_eq!(s.multiplier_at(at(199)), 0.5);
        assert_eq!(s.multiplier_at(at(200)), 1.0);
        assert_eq!(s.next_change_after(at(0)), Some(at(100)));
        assert_eq!(s.next_change_after(at(100)), Some(at(200)));
        assert_eq!(s.next_change_after(at(200)), None);
        assert_eq!(s.min_multiplier(), 0.5);
    }

    #[test]
    fn down_flap_floors_at_min_multiplier() {
        let s = LinkSchedule::degraded(at(10), at(20), 0.0);
        assert_eq!(s.multiplier_at(at(15)), LinkSchedule::MIN_MULTIPLIER);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_changes_panic() {
        LinkSchedule::new(vec![(at(20), 0.5), (at(10), 1.0)]);
    }
}
