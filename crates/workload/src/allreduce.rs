//! Allreduce algorithm cost models.
//!
//! The model zoo's `wire_mb` is calibrated at the reference configuration
//! (2 workers, ring allreduce). This module scales that quantity to other
//! worker counts and algorithms, using each algorithm's well-known
//! bottleneck-link byte count:
//!
//! * **Ring** (Baidu allreduce, ref [1, 22, 44]): every worker sends
//!   `2(n−1)/n · S` bytes per iteration, so relative to `n = 2` (factor 1)
//!   the multiplier is `2(n−1)/n`.
//! * **Tree** (reduce + broadcast, ref [35]): a leaf's link carries `S` up
//!   and `S` down regardless of `n` — factor 1, but latency grows with
//!   depth (not modelled; the paper's abstraction is byte-volume only).
//! * **Hierarchical** (ring of rings, ref [45, 46]): intra-group ring over
//!   `g`-sized groups, then an inter-group ring over leaders. A member
//!   link carries the intra-group factor; a *leader uplink* additionally
//!   carries the inter-group ring bytes — the quantity that matters on ToR
//!   uplinks in the cluster experiments.

use crate::Model;
use simtime::ByteSize;

/// The collective algorithm a job uses to synchronize gradients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Allreduce {
    /// Ring allreduce (the reference algorithm).
    #[default]
    Ring,
    /// Binary-tree reduce + broadcast.
    Tree,
    /// Two-level hierarchical ring with the given group size.
    Hierarchical {
        /// Workers per intra-level group (e.g. hosts per rack).
        group: u8,
    },
}

impl Allreduce {
    /// Byte multiplier on a worker's bottleneck link, relative to the
    /// reference configuration (ring, `n = 2`).
    ///
    /// # Panics
    /// Panics if `workers < 2` (a 1-worker job does no allreduce) or a
    /// hierarchical group size is 0 or exceeds the worker count.
    pub fn wire_factor(self, workers: u32) -> f64 {
        assert!(workers >= 2, "allreduce needs at least 2 workers");
        match self {
            Allreduce::Ring => 2.0 * (workers as f64 - 1.0) / workers as f64,
            Allreduce::Tree => 1.0,
            Allreduce::Hierarchical { group } => {
                let g = group as u32;
                assert!(
                    g >= 1 && g <= workers,
                    "hierarchical group {g} invalid for {workers} workers"
                );
                if g <= 1 {
                    // Degenerate: every worker is a leader; pure inter ring.
                    return Allreduce::Ring.wire_factor(workers);
                }
                // Intra-group ring over g members.
                2.0 * (g as f64 - 1.0) / g as f64
            }
        }
    }

    /// Additional byte multiplier carried by a *leader's uplink* (the
    /// inter-group stage). Zero for flat algorithms.
    pub fn leader_uplink_factor(self, workers: u32) -> f64 {
        match self {
            Allreduce::Ring | Allreduce::Tree => 0.0,
            Allreduce::Hierarchical { group } => {
                let g = (group as u32).max(1);
                let groups = workers.div_ceil(g);
                if groups <= 1 {
                    0.0
                } else {
                    2.0 * (groups as f64 - 1.0) / groups as f64
                }
            }
        }
    }

    /// Effective wire bytes for `model` at `workers` workers: the calibrated
    /// reference volume scaled by [`Allreduce::wire_factor`].
    pub fn wire_bytes(self, model: Model, workers: u32) -> ByteSize {
        // Reference is ring at n=2, whose factor is 1.0.
        model.wire_bytes().mul_f64(self.wire_factor(workers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_factor_reference_is_identity() {
        assert_eq!(Allreduce::Ring.wire_factor(2), 1.0);
    }

    #[test]
    fn ring_factor_grows_toward_two() {
        let f4 = Allreduce::Ring.wire_factor(4);
        let f8 = Allreduce::Ring.wire_factor(8);
        let f64w = Allreduce::Ring.wire_factor(64);
        assert!((f4 - 1.5).abs() < 1e-12);
        assert!((f8 - 1.75).abs() < 1e-12);
        assert!(f4 < f8 && f8 < f64w && f64w < 2.0);
    }

    #[test]
    fn tree_factor_is_constant() {
        for n in [2, 4, 16, 128] {
            assert_eq!(Allreduce::Tree.wire_factor(n), 1.0);
        }
    }

    #[test]
    fn hierarchical_member_and_leader() {
        let h = Allreduce::Hierarchical { group: 4 };
        // Member link: intra-group ring of 4 → 1.5.
        assert!((h.wire_factor(16) - 1.5).abs() < 1e-12);
        // Leader uplink: inter ring over 4 groups → 1.5 extra.
        assert!((h.leader_uplink_factor(16) - 1.5).abs() < 1e-12);
        // Single group: no inter stage.
        assert_eq!(h.leader_uplink_factor(4), 0.0);
        // Flat algorithms have no leader stage.
        assert_eq!(Allreduce::Ring.leader_uplink_factor(8), 0.0);
        assert_eq!(Allreduce::Tree.leader_uplink_factor(8), 0.0);
    }

    #[test]
    fn hierarchical_group_of_one_degenerates_to_ring() {
        let h = Allreduce::Hierarchical { group: 1 };
        assert_eq!(h.wire_factor(8), Allreduce::Ring.wire_factor(8));
    }

    #[test]
    fn wire_bytes_scale() {
        let base = Model::Vgg16.wire_bytes();
        assert_eq!(Allreduce::Ring.wire_bytes(Model::Vgg16, 2), base);
        let scaled = Allreduce::Ring.wire_bytes(Model::Vgg16, 4);
        assert_eq!(scaled, base.mul_f64(1.5));
    }

    #[test]
    #[should_panic(expected = "at least 2 workers")]
    fn single_worker_rejected() {
        Allreduce::Ring.wire_factor(1);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn oversized_group_rejected() {
        Allreduce::Hierarchical { group: 9 }.wire_factor(8);
    }
}
