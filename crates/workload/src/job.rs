//! [`JobSpec`]: a concrete training job and its derived phase quantities.

use crate::{Allreduce, Model};
use simtime::{Bandwidth, ByteSize, Dur};
use std::fmt;

/// How a job's per-iteration communication is emitted onto the wire.
///
/// Many training platforms pipeline backpropagation with the allreduce —
/// gradients are bucketized and each bucket's transfer starts as soon as
/// its layer finishes — turning the single communication burst into a
/// train of smaller bursts separated by compute gaps. Finer bursts pack
/// better on the circle: a pipelined job can be compatible with partners
/// a monolithic job of the same volume is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pipeline {
    /// Number of equal communication bursts per iteration (≥ 1).
    pub chunks: u8,
    /// Compute gap between consecutive bursts (backprop time per bucket).
    pub gap: Dur,
}

impl Pipeline {
    /// The paper's base abstraction: one monolithic communication phase.
    pub const fn single() -> Pipeline {
        Pipeline {
            chunks: 1,
            gap: Dur::ZERO,
        }
    }

    /// A pipelined emission with `chunks` bursts separated by `gap`.
    ///
    /// # Panics
    /// Panics if `chunks == 0`.
    pub fn chunked(chunks: u8, gap: Dur) -> Pipeline {
        assert!(chunks >= 1, "Pipeline: zero chunks");
        Pipeline { chunks, gap }
    }
}

impl Default for Pipeline {
    fn default() -> Pipeline {
        Pipeline::single()
    }
}

/// Identifier of a job within an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

/// A concrete data-parallel training job: model, per-GPU batch size, worker
/// count and collective algorithm.
///
/// From these the job's periodic on/off pattern follows:
/// * compute phase = [`JobSpec::compute_time`] (forward pass, off);
/// * communication phase = injecting [`JobSpec::comm_bytes`] into the
///   network (backprop + allreduce, on), which takes
///   [`JobSpec::comm_time_at`] when uncontended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// The DNN being trained.
    pub model: Model,
    /// Global batch size (the quantity Table 1 reports).
    pub batch: u32,
    /// Number of data-parallel workers.
    pub workers: u32,
    /// Gradient synchronization algorithm.
    pub allreduce: Allreduce,
    /// Communication emission shape (monolithic or pipelined bursts).
    pub pipeline: Pipeline,
}

impl JobSpec {
    /// A job at the paper's reference configuration: 2 workers, ring
    /// allreduce — the testbed setup behind Fig. 1 and Table 1.
    pub fn reference(model: Model, batch: u32) -> JobSpec {
        JobSpec {
            model,
            batch,
            workers: 2,
            allreduce: Allreduce::Ring,
            pipeline: Pipeline::single(),
        }
    }

    /// The same job with its communication split into `chunks` bursts
    /// separated by `gap` of backprop compute.
    pub fn pipelined(self, chunks: u8, gap: Dur) -> JobSpec {
        JobSpec {
            pipeline: Pipeline::chunked(chunks, gap),
            ..self
        }
    }

    /// A short label like `"VGG19(1200)"`, as rows appear in Table 1.
    pub fn label(&self) -> String {
        format!("{}({})", self.model.name(), self.batch)
    }

    /// Compute-phase (forward pass) duration.
    pub fn compute_time(&self) -> Dur {
        self.model.compute_time(self.batch)
    }

    /// Bytes injected through a worker's bottleneck link direction per
    /// iteration.
    pub fn comm_bytes(&self) -> ByteSize {
        self.allreduce.wire_bytes(self.model, self.workers)
    }

    /// Communication-phase duration when the job is alone on a link of the
    /// given rate.
    pub fn comm_time_at(&self, rate: Bandwidth) -> Dur {
        rate.time_to_send(self.comm_bytes())
    }

    /// Solo iteration time on a dedicated link of the given rate — the
    /// perimeter of the job's circle in the geometric abstraction.
    /// Pipelined jobs additionally pay their inter-burst compute gaps.
    pub fn iteration_time_at(&self, rate: Bandwidth) -> Dur {
        self.compute_time()
            + self.comm_time_at(rate)
            + self.pipeline.gap * (self.pipeline.chunks as u64 - 1)
    }

    /// The iteration's phase plan: `(compute, comm_bytes)` segments
    /// executed in order. Monolithic jobs have one segment; pipelined jobs
    /// have one per burst, with the forward pass ahead of the first and
    /// the gap ahead of each subsequent burst.
    pub fn phase_plan(&self) -> Vec<(Dur, f64)> {
        let total = self.comm_bytes().as_bytes() as f64;
        let c = self.pipeline.chunks as usize;
        let per_burst = total / c as f64;
        (0..c)
            .map(|i| {
                let compute = if i == 0 {
                    self.compute_time()
                } else {
                    self.pipeline.gap
                };
                (compute, per_burst)
            })
            .collect()
    }

    /// Fraction of the solo iteration spent communicating, in `(0, 1)`.
    /// The single most important compatibility statistic: a set of jobs can
    /// only be fully compatible if their comm fractions sum to ≤ 1 (after
    /// aligning periods on the unified circle).
    pub fn comm_fraction_at(&self, rate: Bandwidth) -> f64 {
        self.comm_time_at(rate).ratio(self.iteration_time_at(rate))
    }
}

impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: Bandwidth = Bandwidth::from_gbps(50);

    #[test]
    fn label_matches_table1_style() {
        let j = JobSpec::reference(Model::Vgg19, 1200);
        assert_eq!(j.label(), "VGG19(1200)");
        assert_eq!(j.to_string(), "VGG19(1200)");
        assert_eq!(JobId(2).to_string(), "J2");
    }

    #[test]
    fn reference_configuration() {
        let j = JobSpec::reference(Model::Dlrm, 2000);
        assert_eq!(j.workers, 2);
        assert_eq!(j.allreduce, Allreduce::Ring);
        // DLRM(2000): 700 ms compute + 300 ms comm = 1000 ms solo.
        assert_eq!(j.compute_time(), Dur::from_millis(700));
        let solo = j.iteration_time_at(LINE).as_millis_f64();
        assert!((solo - 1000.0).abs() < 0.5, "solo {solo} ms");
        let frac = j.comm_fraction_at(LINE);
        assert!((frac - 0.3).abs() < 0.001, "comm fraction {frac}");
    }

    #[test]
    fn more_workers_means_more_wire_bytes() {
        let two = JobSpec::reference(Model::Vgg16, 1400);
        let four = JobSpec { workers: 4, ..two };
        assert!(four.comm_bytes() > two.comm_bytes());
        assert!(four.iteration_time_at(LINE) > two.iteration_time_at(LINE));
        // Compute phase is unaffected by worker count in this model
        // (global batch fixed per GPU).
        assert_eq!(four.compute_time(), two.compute_time());
    }

    #[test]
    fn comm_fraction_bounds() {
        for m in Model::ALL {
            let j = JobSpec::reference(m, 1000);
            let f = j.comm_fraction_at(LINE);
            assert!(f > 0.0 && f < 1.0, "{}: fraction {f}", j.label());
        }
        // BERT(8) is the most communication-bound job in Table 1.
        let bert = JobSpec::reference(Model::BertLarge, 8);
        assert!(bert.comm_fraction_at(LINE) > 0.7);
    }
}
