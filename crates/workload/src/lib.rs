//! Distributed DNN training job models.
//!
//! The paper abstracts a data-parallel training job as a strictly periodic
//! **on/off** network pattern: the *off* period is the forward pass
//! ("compute phase") and the *on* period is backpropagation + allreduce
//! ("communication phase"), because congestion matters whenever data is
//! being injected (§2). This crate provides that abstraction as executable
//! models:
//!
//! * [`Model`] / [`models`] — a zoo of the paper's six DNNs (VGG16, VGG19,
//!   ResNet-50, WideResNet-50-2, BERT-large, DLRM) with per-sample compute
//!   costs and **effective wire bytes** calibrated against the numbers the
//!   paper reports (see `DESIGN.md` §4 for the derivation);
//! * [`JobSpec`] — a concrete job: model + batch size + worker count +
//!   allreduce algorithm, yielding its compute-phase duration and
//!   per-iteration communication bytes;
//! * [`JobProgress`] — the iteration state machine the network engines
//!   drive: compute until the forward pass ends, then inject bytes until the
//!   allreduce completes, record the iteration time, repeat;
//! * [`allreduce`] — bottleneck-byte factors for ring, tree and
//!   hierarchical allreduce as worker count scales;
//! * [`trace`] — dedicated-network demand traces (the paper's Fig. 3a
//!   time-series view) and burst detection, so a profiler can recover the
//!   on/off structure from measured NIC counters.
//!
//! # Example
//!
//! ```
//! use workload::{JobSpec, Model};
//! use simtime::Bandwidth;
//!
//! let line = Bandwidth::from_gbps(50);
//! let job = JobSpec::reference(Model::Dlrm, 2000);
//! // The Table 1 anchor: 700 ms compute + 300 ms communication.
//! assert_eq!(job.compute_time().as_millis(), 700);
//! assert_eq!(job.comm_time_at(line).as_millis(), 300);
//! assert!((job.comm_fraction_at(line) - 0.3).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allreduce;
mod job;
mod models;
mod noise;
mod progress;
pub mod trace;

pub use allreduce::Allreduce;
pub use job::{JobId, JobSpec, Pipeline};
pub use models::{Model, ModelParams};
pub use noise::PhaseNoise;
pub use progress::{IterationRecord, JobPhase, JobProgress};
pub use trace::{burst_stats, demand_trace, detect_bursts, Burst, BurstStats};
