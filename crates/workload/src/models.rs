//! The model zoo: the six DNNs the paper evaluates, with calibrated costs.
//!
//! # Calibration (see also `DESIGN.md` §4)
//!
//! Each model carries two simulator-facing constants:
//!
//! * `fwd_ns_per_sample` — forward-pass ("compute phase") time per training
//!   sample on an A100-class accelerator. The compute phase scales linearly
//!   with batch size; this is why Table 1 lists batch sizes: batch moves a
//!   job between compatible and incompatible regimes.
//! * `wire_mb` — **effective** bytes a worker pushes through its bottleneck
//!   link direction per iteration with 2 workers and ring allreduce. This is
//!   calibrated from observed communication-phase durations, so it absorbs
//!   backprop overlap, bucketization and protocol overhead rather than being
//!   raw `2(n−1)/n × params`.
//!
//! Two anchors fix the calibration:
//!
//! * Fig. 3: VGG16 has a 255 ms iteration of which the first 141 ms are
//!   pure compute — at batch 1400 that is 100.7 µs/sample, and the 114 ms
//!   communication arc at 50 Gbps is 712 MB on the wire.
//! * Table 1 row 2: two DLRM(2000) jobs take 1301 ms under fair sharing and
//!   1001 ms under unfairness. With compute `K` and solo communication `C`,
//!   full fair overlap gives `K + 2C ≈ 1300` and perfect interleaving gives
//!   `K + C ≈ 1000`, so `K = 700 ms`, `C = 300 ms` — i.e. 350 µs/sample at
//!   batch 2000 and 1875 MB on the wire.
//!
//! The remaining models are placed so that the Table 1 group structure
//! reproduces: e.g. WideResNet-50-2(800) and VGG16(1400) share a 255 ms
//! period (their pairing is marked fully compatible), and ResNet-50(1600)'s
//! period is exactly half of VGG19(1400)'s and VGG16(1700)'s shared 285 ms
//! period, which is what makes the three-job group rotation-feasible with
//! only ≈10 ms of slack (ResNet-50 barely gains: 1.01× in the paper).

use simtime::{Bandwidth, ByteSize, Dur};

/// One of the six DNN models the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// VGG16 image classifier (Simonyan & Zisserman) — 138 M parameters.
    Vgg16,
    /// VGG19 image classifier — 144 M parameters.
    Vgg19,
    /// ResNet-50 image classifier — 25.6 M parameters.
    ResNet50,
    /// WideResNet-50-2 image classifier — 68.9 M parameters.
    WideResNet50,
    /// BERT-large language model — 340 M parameters.
    BertLarge,
    /// DLRM recommendation model (dense + projected embedding gradients).
    Dlrm,
}

/// Static parameters of a model in the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelParams {
    /// Human-readable name as used in the paper's tables.
    pub name: &'static str,
    /// Real parameter-set size (for documentation; the simulator uses
    /// `wire_mb`).
    pub param_millions: u32,
    /// Forward-pass compute per sample.
    pub fwd_ns_per_sample: u64,
    /// Effective bottleneck-direction wire megabytes per iteration at the
    /// reference configuration (2 workers, ring allreduce).
    pub wire_mb: u64,
}

impl Model {
    /// Every model in the zoo, in a stable order.
    pub const ALL: [Model; 6] = [
        Model::Vgg16,
        Model::Vgg19,
        Model::ResNet50,
        Model::WideResNet50,
        Model::BertLarge,
        Model::Dlrm,
    ];

    /// The model's static parameters.
    pub const fn params(self) -> ModelParams {
        match self {
            Model::Vgg16 => ModelParams {
                name: "VGG16",
                param_millions: 138,
                fwd_ns_per_sample: 100_700,
                wire_mb: 712,
            },
            Model::Vgg19 => ModelParams {
                name: "VGG19",
                param_millions: 144,
                fwd_ns_per_sample: 118_800,
                wire_mb: 742,
            },
            Model::ResNet50 => ModelParams {
                name: "ResNet50",
                param_millions: 26,
                fwd_ns_per_sample: 75_900,
                wire_mb: 131,
            },
            Model::WideResNet50 => ModelParams {
                name: "WideResNet",
                param_millions: 69,
                fwd_ns_per_sample: 250_000,
                wire_mb: 344,
            },
            Model::BertLarge => ModelParams {
                name: "BERT",
                param_millions: 340,
                fwd_ns_per_sample: 5_000_000,
                wire_mb: 687,
            },
            Model::Dlrm => ModelParams {
                name: "DLRM",
                param_millions: 540,
                fwd_ns_per_sample: 350_000,
                wire_mb: 1_875,
            },
        }
    }

    /// The model's name as printed in the paper's tables.
    pub const fn name(self) -> &'static str {
        self.params().name
    }

    /// Forward-pass (compute phase) duration at a given batch size.
    pub fn compute_time(self, batch: u32) -> Dur {
        Dur::from_nanos(self.params().fwd_ns_per_sample * batch as u64)
    }

    /// Effective wire bytes at the reference configuration.
    pub fn wire_bytes(self) -> ByteSize {
        ByteSize::from_mb(self.params().wire_mb)
    }

    /// Solo communication-phase duration when the wire bytes move at
    /// `rate` uncontended (reference configuration).
    pub fn comm_time(self, rate: Bandwidth) -> Dur {
        rate.time_to_send(self.wire_bytes())
    }

    /// The batch size whose solo iteration time is closest to `target` at
    /// the given link rate — the inverse of the calibration, used when a
    /// scheduler wants to *harmonize* a job's period with its link-mates
    /// (§5, "impact of hyper-parameters"). Returns `None` if even batch 1
    /// overshoots the target (the model's communication alone is too
    /// long).
    pub fn batch_for_period(self, target: Dur, rate: Bandwidth) -> Option<u32> {
        let comm = self.comm_time(rate);
        let compute_budget = target.checked_sub(comm)?;
        let per_sample = self.params().fwd_ns_per_sample;
        let batch = ((compute_budget.as_nanos() + per_sample / 2) / per_sample).max(1);
        u32::try_from(batch).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: Bandwidth = Bandwidth::from_gbps(50);

    /// Fig. 3 anchor: VGG16 at batch 1400 → 141 ms compute, ≈114 ms comm,
    /// ≈255 ms iteration.
    #[test]
    fn vgg16_matches_fig3_anchor() {
        let compute = Model::Vgg16.compute_time(1400);
        assert_eq!(compute, Dur::from_micros(140_980));
        let comm = Model::Vgg16.comm_time(LINE);
        let comm_ms = comm.as_millis_f64();
        assert!((comm_ms - 114.0).abs() < 1.0, "comm {comm_ms} ms");
        let iter = (compute + comm).as_millis_f64();
        assert!((iter - 255.0).abs() < 1.5, "iteration {iter} ms");
    }

    /// Table 1 anchor: DLRM(2000) → 700 ms compute + 300 ms comm.
    #[test]
    fn dlrm_matches_table1_anchor() {
        assert_eq!(Model::Dlrm.compute_time(2000), Dur::from_millis(700));
        let comm = Model::Dlrm.comm_time(LINE).as_millis_f64();
        assert!((comm - 300.0).abs() < 0.5, "comm {comm} ms");
    }

    /// BERT(8) is communication-dominated: tiny batch, big model.
    #[test]
    fn bert_is_comm_dominated() {
        let compute = Model::BertLarge.compute_time(8);
        let comm = Model::BertLarge.comm_time(LINE);
        assert_eq!(compute, Dur::from_millis(40));
        assert!(comm > compute * 2, "comm {comm} vs compute {compute}");
    }

    /// The Table 1 group-4 pairing shares a period: WRN(800) and
    /// VGG16(1400) both iterate in ≈255 ms solo.
    #[test]
    fn wrn_and_vgg16_periods_match() {
        let wrn = Model::WideResNet50.compute_time(800) + Model::WideResNet50.comm_time(LINE);
        let vgg = Model::Vgg16.compute_time(1400) + Model::Vgg16.comm_time(LINE);
        let diff = wrn.as_millis_f64() - vgg.as_millis_f64();
        assert!(diff.abs() < 1.0, "periods differ by {diff} ms");
    }

    /// The Table 1 group-5 trio: VGG19(1400) ≈ VGG16(1700) ≈ 285 ms and
    /// ResNet50(1600) at half that, making the unified circle small.
    #[test]
    fn group5_periods_are_harmonic() {
        let p19 = Model::Vgg19.compute_time(1400) + Model::Vgg19.comm_time(LINE);
        let p16 = Model::Vgg16.compute_time(1700) + Model::Vgg16.comm_time(LINE);
        let p50 = Model::ResNet50.compute_time(1600) + Model::ResNet50.comm_time(LINE);
        assert!((p19.as_millis_f64() - 285.0).abs() < 1.0, "VGG19 {p19}");
        assert!((p16.as_millis_f64() - 285.0).abs() < 1.0, "VGG16 {p16}");
        assert!((p50.as_millis_f64() - 142.5).abs() < 1.0, "ResNet50 {p50}");
    }

    #[test]
    fn zoo_is_complete_and_distinct() {
        assert_eq!(Model::ALL.len(), 6);
        let names: std::collections::HashSet<&str> = Model::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 6);
        for m in Model::ALL {
            let p = m.params();
            assert!(p.fwd_ns_per_sample > 0);
            assert!(p.wire_mb > 0);
            assert!(p.param_millions > 0);
        }
    }

    #[test]
    fn batch_for_period_inverts_calibration() {
        // Round trip: the batch recovered from a known iteration time
        // reproduces that iteration time (within one sample of compute).
        for m in Model::ALL {
            let batch = 800;
            let target = m.compute_time(batch) + m.comm_time(LINE);
            let recovered = m.batch_for_period(target, LINE).unwrap();
            assert_eq!(recovered, batch, "{m:?}");
        }
        // The group-5 harmonization: which VGG16 batch matches VGG19(1400)?
        let target = Model::Vgg19.compute_time(1400) + Model::Vgg19.comm_time(LINE);
        let b = Model::Vgg16.batch_for_period(target, LINE).unwrap();
        assert!(
            (1699..=1700).contains(&b),
            "the paper's own batch choice (±1 sample of rounding): {b}"
        );
        // Unreachable targets: shorter than the model's comm time.
        assert_eq!(
            Model::Dlrm.batch_for_period(Dur::from_millis(100), LINE),
            None
        );
        // A target barely above comm yields the minimum batch.
        let comm = Model::ResNet50.comm_time(LINE);
        assert_eq!(
            Model::ResNet50.batch_for_period(comm + Dur::from_nanos(1), LINE),
            Some(1)
        );
    }

    #[test]
    fn compute_scales_linearly_with_batch() {
        for m in Model::ALL {
            assert_eq!(m.compute_time(100) * 3, m.compute_time(300));
            assert_eq!(m.compute_time(0), Dur::ZERO);
        }
    }
}
