//! [`PhaseNoise`]: deterministic per-iteration phase perturbation.
//!
//! Real clusters do not exhibit the paper's perfectly periodic on/off
//! pattern: compute phases jitter with input skew and kernel variance,
//! stragglers stretch individual iterations by integer factors, and
//! gradient-bucket boundaries wobble the communication volume. MLTCP
//! (arXiv:2402.09589) measures this iteration-level noise as the norm in
//! shared training clusters. `PhaseNoise` models it as a *keyed, stateless*
//! perturbation: the scale factors for iteration `i` of job `j` are a pure
//! function of `(seed, j, i)`, so every network engine — fluid, rate,
//! packet — derives the *same* fault schedule regardless of the order in
//! which its internal events fire. That property is what makes
//! cross-engine conformance testing under chaos possible.

/// Deterministic per-iteration compute/communication scaling for one job.
///
/// A `None` noise (engines store `Option<PhaseNoise>`) leaves
/// [`crate::JobProgress`] bit-for-bit identical to the unperturbed code
/// path; a `Some` applies, at each iteration start:
///
/// * a uniform compute-duration jitter in `[1-compute_jitter, 1+compute_jitter]`,
/// * a uniform communication-volume jitter in `[1-comm_jitter, 1+comm_jitter]`,
/// * with probability `straggler_prob`, an additional `straggler_factor`×
///   stretch of the compute phase (a slow worker holding up the allreduce).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseNoise {
    /// Chaos stream seed (shared by every job in a scenario).
    pub seed: u64,
    /// The job's index, mixed into each draw so jobs decorrelate.
    pub job: u32,
    /// Half-width of the uniform compute-duration jitter (0 = off).
    pub compute_jitter: f64,
    /// Half-width of the uniform communication-volume jitter (0 = off).
    pub comm_jitter: f64,
    /// Per-iteration probability of a straggler event.
    pub straggler_prob: f64,
    /// Compute-phase stretch applied when an iteration straggles (≥ 1).
    pub straggler_factor: f64,
}

/// Scales below this are clamped: a compute phase can shrink, but never to
/// (or past) zero, and a communication phase always carries some bytes.
const MIN_SCALE: f64 = 0.05;

/// SplitMix64 step — same construction as `eventsim::Rng`'s seeder,
/// duplicated here (6 lines) so `workload` stays dependency-free. Used as
/// a keyed hash, not a stream: each `(seed, job, iteration)` triple gets
/// its own short chain.
#[inline]
const fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl PhaseNoise {
    /// The `(compute_scale, comm_scale)` pair for iteration `iteration`.
    ///
    /// Pure in `(self, iteration)`: engines may call this in any order,
    /// any number of times, and concurrently for different jobs, and the
    /// schedule never changes.
    pub fn scales(&self, iteration: u32) -> (f64, f64) {
        let mut s = self
            .seed
            .wrapping_add((self.job as u64).wrapping_mul(0xA076_1D64_78BD_642F))
            .wrapping_add((iteration as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        let c = splitmix64(&mut s);
        let mut compute = 1.0 + self.compute_jitter * (2.0 * unit(a) - 1.0);
        let comm = (1.0 + self.comm_jitter * (2.0 * unit(b) - 1.0)).max(MIN_SCALE);
        if self.straggler_prob > 0.0 && unit(c) < self.straggler_prob {
            compute *= self.straggler_factor.max(1.0);
        }
        (compute.max(MIN_SCALE), comm)
    }

    /// `true` if iteration `iteration` is a straggler under this noise.
    pub fn is_straggler(&self, iteration: u32) -> bool {
        if self.straggler_prob <= 0.0 {
            return false;
        }
        let mut s = self
            .seed
            .wrapping_add((self.job as u64).wrapping_mul(0xA076_1D64_78BD_642F))
            .wrapping_add((iteration as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
        let _ = splitmix64(&mut s);
        let _ = splitmix64(&mut s);
        unit(splitmix64(&mut s)) < self.straggler_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(job: u32) -> PhaseNoise {
        PhaseNoise {
            seed: 42,
            job,
            compute_jitter: 0.1,
            comm_jitter: 0.05,
            straggler_prob: 0.2,
            straggler_factor: 3.0,
        }
    }

    #[test]
    fn scales_are_pure_and_keyed() {
        let n = noise(0);
        for i in 0..32 {
            assert_eq!(n.scales(i), n.scales(i), "iteration {i} not pure");
        }
        // Different jobs and iterations decorrelate.
        assert_ne!(noise(0).scales(0), noise(1).scales(0));
        assert_ne!(noise(0).scales(0), noise(0).scales(1));
    }

    #[test]
    fn scales_respect_bounds() {
        let n = noise(7);
        for i in 0..256 {
            let (c, m) = n.scales(i);
            assert!(c >= MIN_SCALE, "compute scale {c} below floor");
            assert!(m >= MIN_SCALE, "comm scale {m} below floor");
            // Jitter 0.1 + straggler 3× bounds compute at 1.1 × 3.
            assert!(c <= 1.1 * 3.0 + 1e-9, "compute scale {c} out of range");
            assert!((0.95..=1.05).contains(&m), "comm scale {m} out of range");
        }
    }

    #[test]
    fn straggler_flag_matches_scales() {
        let n = noise(3);
        let mut seen = 0;
        for i in 0..256 {
            let (c, _) = n.scales(i);
            if n.is_straggler(i) {
                seen += 1;
                assert!(c > 1.1 * 2.0, "straggler iteration {i} not stretched");
            } else {
                assert!(c <= 1.1 + 1e-9, "normal iteration {i} stretched: {c}");
            }
        }
        // ~20% of 256: wide tolerance but must actually fire.
        assert!(
            (20..=90).contains(&seen),
            "straggler count {seen} implausible"
        );
    }

    #[test]
    fn zero_params_are_identity() {
        let n = PhaseNoise {
            seed: 9,
            job: 0,
            compute_jitter: 0.0,
            comm_jitter: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 3.0,
        };
        for i in 0..16 {
            assert_eq!(n.scales(i), (1.0, 1.0));
            assert!(!n.is_straggler(i));
        }
    }
}
