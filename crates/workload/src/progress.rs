//! [`JobProgress`]: the per-job iteration state machine the network engines
//! drive.
//!
//! A training job alternates between two phases (§2 of the paper):
//!
//! ```text
//! ── compute (forward pass, off) ──► communicate (backprop+allreduce, on) ──► …
//!         fixed duration                 ends when comm_bytes delivered
//! ```
//!
//! The *compute* phase has a fixed duration known up front; the
//! *communication* phase ends when the network has delivered the job's
//! per-iteration byte volume — its duration therefore depends on the
//! congestion-control behaviour of every job sharing a link, which is the
//! entire subject of the paper.

use crate::{JobSpec, PhaseNoise};
use simtime::{Dur, Time};

/// Which phase a job is currently in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobPhase {
    /// Forward pass: no network demand until `until`.
    Computing {
        /// When the forward pass completes and communication starts.
        until: Time,
    },
    /// Backprop + allreduce: `remaining` bytes still to deliver.
    Communicating {
        /// Bytes not yet delivered (fractional: fluid engines deliver
        /// continuous amounts).
        remaining: f64,
    },
}

/// One completed training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationRecord {
    /// Zero-based iteration index.
    pub index: u32,
    /// When the iteration's compute phase started.
    pub started: Time,
    /// When its communication phase finished.
    pub completed: Time,
}

impl IterationRecord {
    /// The iteration's wall-clock duration — the paper's headline metric.
    pub fn duration(&self) -> Dur {
        self.completed - self.started
    }
}

/// Drives a job's phase alternation and records iteration times.
///
/// An iteration executes the job's **phase plan** (see
/// [`JobSpec::phase_plan`]): one `(compute, comm_bytes)` segment for the
/// paper's monolithic jobs, several for pipelined jobs. The engine
/// contract:
/// 1. While [`JobPhase::Computing`], the job demands no bandwidth; the
///    engine must call [`JobProgress::poll`] at (or after) the phase's
///    `until` instant to flip it into communication.
/// 2. While [`JobPhase::Communicating`], the engine delivers bytes via
///    [`JobProgress::deliver`]; when the segment's residual reaches zero
///    the job either enters the next segment's compute gap (pipelined) or
///    records the iteration and starts the next one. After any delivery
///    that leaves the job computing, consult
///    [`JobProgress::next_self_transition`] for the next poll deadline.
#[derive(Debug, Clone)]
pub struct JobProgress {
    spec: JobSpec,
    phase: JobPhase,
    iter_started: Time,
    iterations: Vec<IterationRecord>,
    /// Per-iteration `(compute, comm_bytes)` segments.
    plan: Vec<(Dur, f64)>,
    /// Index of the segment currently executing.
    segment: usize,
    /// Optional chaos perturbation; `None` is the exact legacy behaviour.
    noise: Option<PhaseNoise>,
    /// `(compute_scale, comm_scale)` for the iteration in flight, refreshed
    /// from `noise` each time a new iteration starts. `(1, 1)` when quiet.
    scales: (f64, f64),
}

/// Residual below which a communication phase counts as finished. Half a
/// byte: a fluid engine cannot stall forever on float dust, and no real
/// transfer is sub-byte.
const DONE_EPSILON: f64 = 0.5;

/// Scales a compute duration, bypassing the float round-trip entirely at
/// scale 1 so the quiet path stays bit-identical even for extreme spans.
#[inline]
fn scale_dur(d: Dur, k: f64) -> Dur {
    if k == 1.0 {
        d
    } else {
        d.mul_f64(k)
    }
}

impl JobProgress {
    /// A job that begins its first compute phase at `start`.
    pub fn new(spec: JobSpec, start: Time) -> JobProgress {
        JobProgress::with_comm_bytes(spec, start, spec.comm_bytes().as_bytes() as f64)
    }

    /// Total bytes this job injects in the iteration currently in flight
    /// (the plan total scaled by any chaos comm jitter), across segments.
    pub fn comm_bytes_per_iteration(&self) -> f64 {
        self.plan.iter().map(|&(_, b)| b).sum::<f64>() * self.scales.1
    }

    /// A job whose per-iteration communication volume is overridden —
    /// used when the placement splits the allreduce into several
    /// concurrent inter-rack flows, each carrying the calibrated
    /// bottleneck volume (total injected bytes = hops × calibrated bytes).
    ///
    /// # Panics
    /// Panics unless `comm_bytes` is positive and finite.
    pub fn with_comm_bytes(spec: JobSpec, start: Time, comm_bytes: f64) -> JobProgress {
        JobProgress::with_noise(spec, start, comm_bytes, None)
    }

    /// The most general constructor: overridden communication volume plus
    /// an optional [`PhaseNoise`]. `noise: None` is bit-for-bit identical
    /// to [`JobProgress::with_comm_bytes`].
    ///
    /// # Panics
    /// Panics unless `comm_bytes` is positive and finite.
    pub fn with_noise(
        spec: JobSpec,
        start: Time,
        comm_bytes: f64,
        noise: Option<PhaseNoise>,
    ) -> JobProgress {
        assert!(
            comm_bytes > 0.0 && comm_bytes.is_finite(),
            "JobProgress: invalid comm bytes {comm_bytes}"
        );
        let base = spec.phase_plan();
        let natural: f64 = base.iter().map(|&(_, b)| b).sum();
        let scale = comm_bytes / natural;
        let plan: Vec<(Dur, f64)> = base.into_iter().map(|(d, b)| (d, b * scale)).collect();
        let scales = noise.map_or((1.0, 1.0), |n| n.scales(0));
        let first = scale_dur(plan[0].0, scales.0);
        JobProgress {
            spec,
            phase: JobPhase::Computing {
                until: start + first,
            },
            iter_started: start,
            iterations: Vec::new(),
            plan,
            segment: 0,
            noise,
            scales,
        }
    }

    /// The job's specification.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// The current phase.
    pub fn phase(&self) -> JobPhase {
        self.phase
    }

    /// `true` while the job is injecting traffic.
    pub fn is_communicating(&self) -> bool {
        matches!(self.phase, JobPhase::Communicating { .. })
    }

    /// Bytes still to deliver in the current communication phase (0 while
    /// computing).
    pub fn remaining_bytes(&self) -> f64 {
        match self.phase {
            JobPhase::Communicating { remaining } => remaining,
            JobPhase::Computing { .. } => 0.0,
        }
    }

    /// The next instant at which the job changes state *on its own*:
    /// the end of a compute phase. `None` while communicating (that
    /// transition is delivery-driven and owned by the engine).
    pub fn next_self_transition(&self) -> Option<Time> {
        match self.phase {
            JobPhase::Computing { until } => Some(until),
            JobPhase::Communicating { .. } => None,
        }
    }

    /// Advances compute→communicate if the compute deadline has passed.
    /// Returns `true` if the transition happened at this call.
    pub fn poll(&mut self, now: Time) -> bool {
        if let JobPhase::Computing { until } = self.phase {
            if now >= until {
                self.phase = JobPhase::Communicating {
                    remaining: self.plan[self.segment].1 * self.scales.1,
                };
                return true;
            }
        }
        false
    }

    /// Delivers `bytes` of the job's traffic at instant `now`. Returns the
    /// completed iteration record if this delivery finished the phase.
    ///
    /// # Panics
    /// Panics if called while the job is computing, or with negative bytes —
    /// both are engine bugs.
    pub fn deliver(&mut self, bytes: f64, now: Time) -> Option<IterationRecord> {
        assert!(bytes >= 0.0, "deliver: negative bytes");
        let JobPhase::Communicating { remaining } = &mut self.phase else {
            panic!("deliver: job is not communicating");
        };
        *remaining -= bytes;
        if *remaining > DONE_EPSILON {
            return None;
        }
        if self.segment + 1 < self.plan.len() {
            // Pipelined: next burst's compute gap (same iteration, so the
            // iteration's scales keep applying).
            self.segment += 1;
            self.phase = JobPhase::Computing {
                until: now + scale_dur(self.plan[self.segment].0, self.scales.0),
            };
            return None;
        }
        let record = IterationRecord {
            index: self.iterations.len() as u32,
            started: self.iter_started,
            completed: now,
        };
        self.iterations.push(record);
        self.iter_started = now;
        self.segment = 0;
        self.scales = self
            .noise
            .map_or((1.0, 1.0), |n| n.scales(self.iterations.len() as u32));
        self.phase = JobPhase::Computing {
            until: now + scale_dur(self.plan[0].0, self.scales.0),
        };
        Some(record)
    }

    /// All completed iterations.
    pub fn iterations(&self) -> &[IterationRecord] {
        &self.iterations
    }

    /// Durations of all completed iterations.
    pub fn iteration_times(&self) -> Vec<Dur> {
        self.iterations.iter().map(|r| r.duration()).collect()
    }

    /// Number of completed iterations.
    pub fn completed(&self) -> usize {
        self.iterations.len()
    }

    /// The chaos perturbation driving this job, if any.
    pub fn noise(&self) -> Option<PhaseNoise> {
        self.noise
    }

    /// Replaces the chaos perturbation from the next iteration rollover
    /// onward; the iteration in flight keeps the scales it already drew.
    /// Forked sweeps use this to inject chaos at the fork barrier.
    pub fn set_noise(&mut self, noise: Option<PhaseNoise>) {
        self.noise = noise;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;
    use simtime::Bandwidth;

    fn job() -> JobProgress {
        // DLRM(2000): 700 ms compute, 1875 MB comm.
        JobProgress::new(JobSpec::reference(Model::Dlrm, 2000), Time::ZERO)
    }

    #[test]
    fn starts_computing() {
        let j = job();
        assert!(!j.is_communicating());
        assert_eq!(
            j.next_self_transition(),
            Some(Time::ZERO + Dur::from_millis(700))
        );
        assert_eq!(j.remaining_bytes(), 0.0);
    }

    #[test]
    fn poll_flips_at_deadline_only() {
        let mut j = job();
        assert!(!j.poll(Time::ZERO + Dur::from_millis(699)));
        assert!(!j.is_communicating());
        assert!(j.poll(Time::ZERO + Dur::from_millis(700)));
        assert!(j.is_communicating());
        assert_eq!(j.remaining_bytes(), 1_875e6);
        // A second poll in the same phase is a no-op.
        assert!(!j.poll(Time::ZERO + Dur::from_millis(701)));
        assert_eq!(j.next_self_transition(), None);
    }

    #[test]
    fn full_iteration_at_line_rate() {
        let mut j = job();
        let t_comm = Time::ZERO + Dur::from_millis(700);
        j.poll(t_comm);
        // Deliver at 50 Gbps for 300 ms in two chunks.
        let rate = Bandwidth::from_gbps(50);
        let half = rate.bytes_in(Dur::from_millis(150)).as_bytes() as f64;
        assert!(j.deliver(half, t_comm + Dur::from_millis(150)).is_none());
        let done = j
            .deliver(half, t_comm + Dur::from_millis(300))
            .expect("iteration should complete");
        assert_eq!(done.index, 0);
        assert_eq!(done.duration(), Dur::from_millis(1000));
        // Next compute phase starts immediately.
        assert!(!j.is_communicating());
        assert_eq!(
            j.next_self_transition(),
            Some(Time::ZERO + Dur::from_millis(1700))
        );
        assert_eq!(j.completed(), 1);
        assert_eq!(j.iteration_times(), vec![Dur::from_millis(1000)]);
    }

    #[test]
    fn sub_byte_residual_counts_as_done() {
        let mut j = job();
        j.poll(Time::ZERO + Dur::from_millis(700));
        let total = j.remaining_bytes();
        let end = Time::ZERO + Dur::from_millis(1000);
        // Leave 0.4 bytes: completes anyway (float-dust guard).
        assert!(j.deliver(total - 0.4, end).is_some());
    }

    #[test]
    fn staggered_start_shifts_everything() {
        let offset = Dur::from_millis(37);
        let mut j = JobProgress::new(
            JobSpec::reference(Model::ResNet50, 1600),
            Time::ZERO + offset,
        );
        let compute = j.spec().compute_time();
        assert_eq!(
            j.next_self_transition(),
            Some(Time::ZERO + offset + compute)
        );
        j.poll(Time::ZERO + offset + compute);
        let total = j.remaining_bytes();
        let end = Time::ZERO + offset + compute + Dur::from_millis(21);
        let rec = j.deliver(total, end).unwrap();
        assert_eq!(rec.started, Time::ZERO + offset);
        assert_eq!(rec.duration(), compute + Dur::from_millis(21));
    }

    #[test]
    fn pipelined_job_walks_its_segments() {
        // VGG19(600) in 3 bursts with 40 ms gaps: segments are
        // (71.28 ms, B/3), (40 ms, B/3), (40 ms, B/3).
        let spec = JobSpec::reference(crate::Model::Vgg19, 600).pipelined(3, Dur::from_millis(40));
        let mut j = JobProgress::new(spec, Time::ZERO);
        let burst = spec.comm_bytes().as_bytes() as f64 / 3.0;
        let mut now = Time::ZERO;
        for seg in 0..3 {
            now = j.next_self_transition().expect("computing between bursts");
            assert!(j.poll(now), "segment {seg} should open");
            assert!((j.remaining_bytes() - burst).abs() < 1.0);
            now += Dur::from_millis(10);
            let rec = j.deliver(j.remaining_bytes(), now);
            if seg < 2 {
                assert!(rec.is_none(), "segment {seg} must not end the iteration");
                assert!(!j.is_communicating());
            } else {
                let rec = rec.expect("last segment completes the iteration");
                assert_eq!(rec.index, 0);
                // Iteration = 71.28 + 3×10 (delivery) + 2×40 (gaps).
                let expect = spec.compute_time() + Dur::from_millis(30) + Dur::from_millis(80);
                assert_eq!(rec.duration(), expect);
            }
        }
        assert_eq!(j.completed(), 1);
        // The second iteration starts from segment 0 again.
        assert_eq!(j.next_self_transition(), Some(now + spec.compute_time()));
    }

    #[test]
    fn pipelined_comm_bytes_scale_with_override() {
        let spec = JobSpec::reference(crate::Model::Vgg19, 600).pipelined(2, Dur::from_millis(5));
        let total = 1_000_000.0;
        let mut j = JobProgress::with_comm_bytes(spec, Time::ZERO, total);
        assert!((j.comm_bytes_per_iteration() - total).abs() < 1.0);
        let t = j.next_self_transition().unwrap();
        j.poll(t);
        assert!((j.remaining_bytes() - total / 2.0).abs() < 1.0);
    }

    #[test]
    fn noise_scales_each_iteration() {
        let spec = JobSpec::reference(Model::ResNet50, 1600);
        let noise = crate::PhaseNoise {
            seed: 11,
            job: 0,
            compute_jitter: 0.2,
            comm_jitter: 0.1,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
        };
        let bytes = spec.comm_bytes().as_bytes() as f64;
        let mut j = JobProgress::with_noise(spec, Time::ZERO, bytes, Some(noise));
        for i in 0..4 {
            let (cs, ms) = noise.scales(i);
            let until = j.next_self_transition().unwrap();
            let expect = spec.compute_time().mul_f64(cs);
            assert_eq!(
                until - j.iterations().last().map_or(Time::ZERO, |r| r.completed),
                expect
            );
            j.poll(until);
            assert!(
                (j.remaining_bytes() - bytes * ms).abs() < 1.0,
                "iteration {i}: comm volume not scaled"
            );
            j.deliver(j.remaining_bytes(), until + Dur::from_millis(25));
        }
    }

    #[test]
    fn none_noise_is_bit_identical() {
        let spec = JobSpec::reference(Model::Vgg19, 600).pipelined(3, Dur::from_millis(40));
        let bytes = spec.comm_bytes().as_bytes() as f64;
        let mut plain = JobProgress::with_comm_bytes(spec, Time::ZERO, bytes);
        let mut noised = JobProgress::with_noise(spec, Time::ZERO, bytes, None);
        for _ in 0..9 {
            let t = plain.next_self_transition().unwrap();
            assert_eq!(t, noised.next_self_transition().unwrap());
            plain.poll(t);
            noised.poll(t);
            assert_eq!(
                plain.remaining_bytes().to_bits(),
                noised.remaining_bytes().to_bits()
            );
            let now = t + Dur::from_millis(7);
            assert_eq!(
                plain.deliver(plain.remaining_bytes(), now),
                noised.deliver(noised.remaining_bytes(), now)
            );
        }
    }

    #[test]
    #[should_panic(expected = "not communicating")]
    fn deliver_while_computing_panics() {
        let mut j = job();
        j.deliver(10.0, Time::ZERO);
    }

    #[test]
    fn multiple_iterations_indexed() {
        let mut j = JobProgress::new(JobSpec::reference(Model::ResNet50, 1600), Time::ZERO);
        for i in 0..5 {
            let mut now = j.next_self_transition().unwrap();
            j.poll(now);
            now += Dur::from_millis(21);
            let rec = j.deliver(j.remaining_bytes(), now).unwrap();
            assert_eq!(rec.index, i);
        }
        assert_eq!(j.completed(), 5);
        // Every iteration has the same duration in a dedicated network.
        let times = j.iteration_times();
        assert!(times.windows(2).all(|w| w[0] == w[1]));
    }
}
