//! Network-demand traces: the Fig. 3a view of a job.
//!
//! The paper's geometric abstraction starts from "the time-series
//! representation of the network demand for a job running in a dedicated
//! cluster" (§3, Fig. 3a). This module generates that representation for a
//! [`JobSpec`] — the strictly periodic on/off rectangle wave — and, in the
//! other direction, recovers the on/off structure from an arbitrary
//! measured rate trace (what a production profiler would do with NIC
//! counters).

use crate::JobSpec;
use eventsim::TimeSeries;
use simtime::{Bandwidth, Dur, Time};

/// Generates the dedicated-network demand trace of a job over `span`:
/// 0 during compute phases, the full `rate` during communication phases.
pub fn demand_trace(spec: &JobSpec, rate: Bandwidth, span: Dur) -> TimeSeries {
    let mut ts = TimeSeries::new();
    let compute = spec.compute_time();
    let comm = spec.comm_time_at(rate);
    let period = compute + comm;
    let gbps = rate.as_gbps_f64();
    let mut t = Time::ZERO;
    ts.push(t, 0.0);
    while t < Time::ZERO + span {
        let comm_start = t + compute;
        let comm_end = t + period;
        if comm_start < Time::ZERO + span {
            ts.push(comm_start, gbps);
        }
        if comm_end < Time::ZERO + span {
            ts.push(comm_end, 0.0);
        }
        t = comm_end;
    }
    ts
}

/// One on-period detected in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// When the trace rose above the threshold.
    pub start: Time,
    /// When it fell back below (exclusive).
    pub end: Time,
}

impl Burst {
    /// The burst's duration.
    pub fn len(&self) -> Dur {
        self.end - self.start
    }

    /// `true` for a zero-length burst (cannot be produced by detection).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Extracts the on-periods (communication bursts) of a rate trace: maximal
/// intervals where the value is ≥ `threshold_gbps`.
///
/// Bursts still open at the end of the trace are dropped — their true
/// length is unknown, and a profiler only uses complete periods.
pub fn detect_bursts(trace: &TimeSeries, threshold_gbps: f64) -> Vec<Burst> {
    let mut bursts = Vec::new();
    let mut open: Option<Time> = None;
    for (t, v) in trace.iter() {
        match (open, v >= threshold_gbps) {
            (None, true) => open = Some(t),
            (Some(start), false) => {
                bursts.push(Burst { start, end: t });
                open = None;
            }
            _ => {}
        }
    }
    bursts
}

/// Statistics a profiler derives from detected bursts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstStats {
    /// Median burst (communication-phase) duration.
    pub comm: Dur,
    /// Median gap between consecutive burst starts (the iteration time).
    pub period: Dur,
}

/// Derives the on/off statistics from a trace's bursts.
///
/// Returns `None` with fewer than two complete bursts (no period can be
/// measured from one).
pub fn burst_stats(bursts: &[Burst]) -> Option<BurstStats> {
    if bursts.len() < 2 {
        return None;
    }
    let mut comms: Vec<Dur> = bursts.iter().map(|b| b.len()).collect();
    comms.sort_unstable();
    let comm = comms[comms.len() / 2];
    let mut periods: Vec<Dur> = bursts.windows(2).map(|w| w[1].start - w[0].start).collect();
    periods.sort_unstable();
    let period = periods[periods.len() / 2];
    Some(BurstStats { comm, period })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    const LINE: Bandwidth = Bandwidth::from_gbps(50);

    #[test]
    fn demand_trace_is_periodic_rectangle_wave() {
        let spec = JobSpec::reference(Model::Vgg16, 1400);
        let span = Dur::from_millis(1_000);
        let ts = demand_trace(&spec, LINE, span);
        // Off during compute, on during comm, for several periods.
        let compute = spec.compute_time();
        let period = spec.iteration_time_at(LINE);
        for k in 0..3u64 {
            let mid_compute = Time::ZERO + period * k + compute / 2;
            let mid_comm = Time::ZERO + period * k + compute + spec.comm_time_at(LINE) / 2;
            assert_eq!(ts.value_at(mid_compute), Some(0.0), "iteration {k}");
            assert_eq!(ts.value_at(mid_comm), Some(50.0), "iteration {k}");
        }
    }

    #[test]
    fn roundtrip_trace_to_profile_stats() {
        // Generate a trace, detect bursts, and recover the job's phases.
        let spec = JobSpec::reference(Model::Vgg19, 1200);
        let ts = demand_trace(&spec, LINE, Dur::from_secs(2));
        let bursts = detect_bursts(&ts, 1.0);
        assert!(bursts.len() >= 5, "got {} bursts", bursts.len());
        let stats = burst_stats(&bursts).unwrap();
        let expect_comm = spec.comm_time_at(LINE);
        let expect_period = spec.iteration_time_at(LINE);
        assert_eq!(stats.comm, expect_comm);
        assert_eq!(stats.period, expect_period);
    }

    #[test]
    fn detect_bursts_edge_cases() {
        // Empty trace.
        assert!(detect_bursts(&TimeSeries::new(), 1.0).is_empty());
        // Trace that never exceeds the threshold.
        let mut low = TimeSeries::new();
        low.push(Time::ZERO, 0.5);
        low.push(Time::from_nanos(100), 0.9);
        assert!(detect_bursts(&low, 1.0).is_empty());
        // Burst still open at the end is dropped.
        let mut open = TimeSeries::new();
        open.push(Time::ZERO, 0.0);
        open.push(Time::from_nanos(100), 5.0);
        assert!(detect_bursts(&open, 1.0).is_empty());
        // A complete burst is detected with exact bounds.
        let mut one = TimeSeries::new();
        one.push(Time::ZERO, 0.0);
        one.push(Time::from_nanos(100), 5.0);
        one.push(Time::from_nanos(300), 0.0);
        let bursts = detect_bursts(&one, 1.0);
        assert_eq!(
            bursts,
            vec![Burst {
                start: Time::from_nanos(100),
                end: Time::from_nanos(300)
            }]
        );
        assert_eq!(bursts[0].len(), Dur::from_nanos(200));
        assert!(!bursts[0].is_empty());
    }

    #[test]
    fn burst_stats_need_two_bursts() {
        let b = Burst {
            start: Time::ZERO,
            end: Time::from_nanos(10),
        };
        assert_eq!(burst_stats(&[]), None);
        assert_eq!(burst_stats(&[b]), None);
    }

    #[test]
    fn burst_stats_use_medians() {
        // One outlier burst must not skew the stats.
        let mk = |s: u64, e: u64| Burst {
            start: Time::from_nanos(s),
            end: Time::from_nanos(e),
        };
        let bursts = vec![
            mk(0, 10),
            mk(100, 110),
            mk(200, 290), // outlier length
            mk(300, 310),
            mk(400, 410),
        ];
        let stats = burst_stats(&bursts).unwrap();
        assert_eq!(stats.comm, Dur::from_nanos(10));
        assert_eq!(stats.period, Dur::from_nanos(100));
    }
}
