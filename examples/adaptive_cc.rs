//! §4.i — the adaptively-unfair congestion control scheme.
//!
//! ```sh
//! cargo run --release --example adaptive_cc
//! ```
//!
//! Shows both halves of the paper's claim: a compatible pair converges to
//! dedicated-network pace with no per-job tuning, while an incompatible
//! pair is *not* victimized the way static unfairness victimizes it.

use mlcc::experiments::adaptive::{run, AdaptiveConfig};

fn main() {
    let cfg = AdaptiveConfig::default();
    println!(
        "§4.i — adaptive unfairness: R_AI·(1 + sent/total), cut softened by progress\n\
         compatible pair: {} + {} | incompatible pair: {} + {}\n",
        cfg.compatible[0].label(),
        cfg.compatible[1].label(),
        cfg.incompatible[0].label(),
        cfg.incompatible[1].label(),
    );
    let r = run(&cfg);
    println!("{}", r.render());
    let (stat, adapt) = r.victim_speedups();
    println!(
        "victim ({}) under static unfairness: {stat} — durably hurt",
        cfg.incompatible[1].label()
    );
    println!(
        "victim ({}) under adaptive unfairness: {adapt} — spared (near-fair steady state)",
        cfg.incompatible[1].label()
    );
}
