//! §5 — cluster-level compatibility and compatibility-aware placement.
//!
//! ```sh
//! cargo run --release --example cluster_sched
//! ```
//!
//! A stream of jobs arrives at a two-tier cluster whose racks force
//! cross-rack splits. The locality-only baseline lands an incompatible
//! BERT + VGG19 pairing on shared ToR uplinks; the compatibility-aware
//! scheduler consults the geometry solver and routes around it.

use mlcc::experiments::cluster::{run, ClusterConfig};

fn main() {
    let cfg = ClusterConfig::default();
    println!(
        "§5 — {} racks × {} hosts, {} spines; arriving jobs:",
        cfg.racks, cfg.hosts_per_rack, cfg.spines
    );
    for j in &cfg.jobs {
        println!("  {} ({} workers)", j.label(), j.workers);
    }
    println!();
    let r = run(&cfg);
    println!("{}", r.render());
    println!(
        "locality-only: {} contended fabric link(s), cluster verdict {}",
        r.locality.contended_links,
        if r.locality.verdict.is_compatible() {
            "compatible".to_string()
        } else {
            format!(
                "incompatible ({:.0}% unavoidable overlap)",
                r.locality.verdict.overlap_fraction() * 100.0
            )
        }
    );
    println!(
        "compatibility-aware: {} contended fabric link(s), cluster verdict {}",
        r.compatibility.contended_links,
        if r.compatibility.verdict.is_compatible() {
            "compatible"
        } else {
            "incompatible"
        }
    );
}
