//! Reproduces Fig. 1: first-iteration bandwidth shares (1b/1c) and the
//! iteration-time CDF (1d) for two VGG19 jobs on a 50 Gbps bottleneck.
//!
//! ```sh
//! cargo run --release --example fig1_bandwidth [iterations]
//! ```
//!
//! `iterations` defaults to 200; the paper runs 1000 (pass it explicitly —
//! a 1000-iteration run simulates ≈ 2 × 300 s of cluster time).

use mlcc::experiments::fig1::{run, Fig1Config};

fn main() {
    let iterations: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("iterations must be a number"))
        .unwrap_or(200);
    let cfg = Fig1Config {
        iterations,
        ..Fig1Config::default()
    };
    println!(
        "Fig. 1 — two {} jobs, {} iterations each, fair (T=125µs both) vs \
         unfair (J1 T=100µs)\n",
        cfg.jobs[0].label(),
        cfg.iterations
    );
    let r = run(&cfg);
    println!("{}", r.render());

    // Fig. 1d: CDF curves at a few percentiles.
    println!("iteration-time percentiles (ms):");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "scenario", "p10", "p25", "p50", "p75", "p90"
    );
    for (name, sc) in [("fair", &r.fair), ("unfair", &r.unfair)] {
        for s in &sc.stats {
            print!("{:<10}", format!("{name}:{}", s.label));
            for p in [10.0, 25.0, 50.0, 75.0, 90.0] {
                print!(" {:>6.1}", s.cdf.percentile(p).as_millis_f64());
            }
            println!();
        }
    }
    let sp = r.speedups();
    println!(
        "\nmedian speedup from unfairness: J1 {}, J2 {} (paper testbed: ≈1.23× both)",
        sp[0], sp[1]
    );
}
