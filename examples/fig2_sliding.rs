//! Reproduces Fig. 2: the sliding effect. Prints per-iteration contended
//! time and an ASCII rendering of both jobs' link usage, fair vs unfair.
//!
//! ```sh
//! cargo run --release --example fig2_sliding
//! ```

use mlcc::experiments::fig2::{run, Fig2Config};
use simtime::{Dur, Time};

fn main() {
    let cfg = Fig2Config::default();
    println!(
        "Fig. 2 — two {} jobs; J1 aggressive (T=100µs) in the unfair scenario\n",
        cfg.jobs[0].label()
    );
    let r = run(&cfg);
    println!("{}", r.render());
    match r.interleaved_at() {
        Some(i) => println!(
            "unfair scenario: communication phases fully interleaved by iteration {} \
             (paper: by the fourth iteration)\n",
            i + 1
        ),
        None => println!("unfair scenario: phases never fully interleaved\n"),
    }

    // ASCII usage strips: one row per job per scenario, 20 ms per column.
    let horizon = Time::ZERO + Dur::from_millis(1_600);
    let col = Dur::from_millis(20);
    for (name, sc) in [("fair", &r.fair), ("unfair", &r.unfair)] {
        println!("{name}: link usage, one column per {col} ('█' ≥ 25 Gbps, '▒' ≥ 1 Gbps)");
        for (j, trace) in sc.traces.iter().enumerate() {
            let cells: String = trace
                .resample(Time::ZERO, horizon, col)
                .iter()
                .map(|&gbps| {
                    if gbps >= 25.0 {
                        '█'
                    } else if gbps >= 1.0 {
                        '▒'
                    } else {
                        '·'
                    }
                })
                .collect();
            println!("  J{j} {cells}");
        }
        println!();
    }
}
