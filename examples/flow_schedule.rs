//! §4.iii — precise flow scheduling from rotation angles.
//!
//! ```sh
//! cargo run --release --example flow_schedule
//! ```
//!
//! Profiles two compatible jobs, solves for rotation angles on the unified
//! circle, converts the angles into communication-release gates, and shows
//! that the gated cluster runs at dedicated-network pace with zero
//! transport changes.

use mlcc::experiments::flowsched::{run, FlowschedConfig};

fn main() {
    let cfg = FlowschedConfig::default();
    println!(
        "§4.iii — flow scheduling for {} + {}: rotation angles become \
         communication time-shifts\n",
        cfg.jobs[0].label(),
        cfg.jobs[1].label()
    );
    let r = run(&cfg);
    println!("{}", r.render());
    println!(
        "Under gating each job communicates only in its assigned slot, so the link\n\
         is handed over without any unfairness in the congestion control. The cost\n\
         the paper flags — tight cluster-wide clock sync — is free in simulation."
    );
}
