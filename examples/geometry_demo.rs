//! Reproduces Figs. 3–5: the geometric abstraction, with ASCII circles.
//!
//! ```sh
//! cargo run --release --example geometry_demo
//! ```

use geometry::Profile;
use mlcc::experiments::geometry_demo::{fig3, fig4, fig5};
use simtime::Dur;

/// Draws a profile as a linearized circle: 72 cells, '#' = communication.
fn strip(p: &Profile, shift: Dur) -> String {
    let cells = 72;
    (0..cells)
        .map(|i| {
            let offset =
                Dur::from_nanos((p.period().as_nanos() as u128 * i as u128 / cells as u128) as u64);
            let pos = (offset + p.period() - (shift % p.period())) % p.period();
            if p.communicating_at(pos) {
                '#'
            } else {
                '·'
            }
        })
        .collect()
}

fn main() {
    // Fig. 3: VGG16 rolled around its circle.
    let f3 = fig3(6);
    println!(
        "Fig. 3 — VGG16(1400): iteration {} (compute {}, comm {})",
        f3.profile.period(),
        f3.profile.period() - f3.profile.comm_time(),
        f3.profile.comm_time()
    );
    println!("  circle: {}", strip(&f3.profile, Dur::ZERO));
    println!(
        "  all {} checked iterations land on the same arcs: {}\n",
        f3.per_iteration_checks.len(),
        f3.per_iteration_checks.iter().all(|&(c, m)| !c && m)
    );

    // Fig. 4: same-period pair, rotate to de-overlap.
    let f4 = fig4();
    let a = Profile::compute_then_comm(Dur::from_millis(141), Dur::from_millis(114));
    let b = Profile::compute_then_comm(Dur::from_millis(200), Dur::from_millis(55));
    println!(
        "Fig. 4 — same-period pair, {} ms of comm overlap before rotation:",
        f4.overlap_at_zero_ms
    );
    println!("  J1 unrotated: {}", strip(&a, Dur::ZERO));
    println!("  J2 unrotated: {}", strip(&b, Dur::ZERO));
    let rot = f4.verdict.rotations().expect("fig4 pair is compatible")[1];
    println!("  J2 rotated {:.0}° ({}):", rot.degrees, rot.shift);
    println!("  J2 rotated:   {}\n", strip(&b, rot.shift));

    // Fig. 5: unified circle for 40 ms and 60 ms jobs.
    let f5 = fig5();
    println!(
        "Fig. 5 — unified circle: perimeter LCM = {}, J1 appears {}×, J2 {}×",
        f5.perimeter, f5.repetitions[0], f5.repetitions[1]
    );
    let rots = f5.verdict.rotations().expect("fig5 pair is compatible");
    println!(
        "  compatible with J1 rotated {:.1}° and J2 rotated {:.1}° on the unified circle",
        rots[0].degrees, rots[1].degrees
    );
}
