//! Extension experiment: bucketized (pipelined) communication widens the
//! compatibility region.
//!
//! ```sh
//! cargo run --release --example pipelining
//! ```
//!
//! Two jobs whose monolithic communication bursts occupy 62.5% of their
//! iteration each can never interleave — but the *same byte volume*
//! emitted as three spaced bursts (as bucketized backprop naturally does)
//! is fully compatible, and weighted sharing drives both jobs to
//! dedicated-network pace.

use mlcc::experiments::pipelining::{run, PipeliningConfig};

fn main() {
    let cfg = PipeliningConfig::default();
    println!(
        "pipelining — {} ×2, monolithic vs {} bursts with {} gaps\n",
        cfg.base.label(),
        cfg.chunks,
        cfg.gap
    );
    let r = run(&cfg);
    println!("{}", r.render());
    println!(
        "Spreading the same volume across spaced bursts turns an incompatible pair\n\
         into a compatible one: each job's bursts fit the other's gaps on the circle."
    );
}
