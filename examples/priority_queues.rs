//! §4.ii — switch priority queues as the unfairness mechanism.
//!
//! ```sh
//! cargo run --release --example priority_queues
//! ```
//!
//! Two compatible jobs get unique priority classes; the switch serves
//! classes strictly. No congestion-control changes, same interleaving
//! payoff. Also demonstrates the paper's caveat: class assignment fails
//! when more jobs share a link than the switch has queues.

use mlcc::experiments::priority::{run, PriorityConfig};
use scheduler::assign_priorities;

fn main() {
    let cfg = PriorityConfig::default();
    println!(
        "§4.ii — strict priority queues for {} + {} ({} switch queues)\n",
        cfg.jobs[0].label(),
        cfg.jobs[1].label(),
        cfg.queues
    );
    let r = run(&cfg);
    println!("{}", r.render());
    println!(
        "Each job claims the full link while communicating in its own class slot;\n\
         both reach dedicated-network pace.\n"
    );
    // The caveat: limited queues.
    match assign_priorities(12, cfg.queues) {
        Ok(_) => unreachable!("12 jobs cannot fit 8 queues"),
        Err(e) => println!("caveat reproduced: {e}"),
    }
}
