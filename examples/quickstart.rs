//! Quickstart: are my two jobs compatible, and what does unfairness buy?
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline on one pair of jobs:
//! 1. describe the jobs (model + batch size);
//! 2. roll each onto its circle and ask the geometry solver whether a
//!    rotation separates their communication arcs;
//! 3. run both jobs through the DCQCN network simulator under fair and
//!    unfair congestion control and compare iteration times.

use dcqcn::CcVariant;
use eventsim::Cdf;
use geometry::{solve_pair, SolverConfig};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use scheduler::analytic_profile;
use simtime::{Bandwidth, Dur};
use workload::{JobSpec, Model};

fn main() {
    let line = Bandwidth::from_gbps(50);
    let a = JobSpec::reference(Model::Dlrm, 2000);
    let b = JobSpec::reference(Model::Dlrm, 2000);
    println!("jobs: {a} and {b} sharing one {line} link\n");

    // 1. Profiles: the on/off circles.
    for j in [&a, &b] {
        println!(
            "{:<12} iteration {:>7} = compute {:>7} + comm {:>7}  ({:.0}% comm)",
            j.label(),
            format!("{}", j.iteration_time_at(line)),
            format!("{}", j.compute_time()),
            format!("{}", j.comm_time_at(line)),
            j.comm_fraction_at(line) * 100.0
        );
    }

    // 2. Geometry: is there a rotation with no overlap?
    let grid = Dur::from_micros(2_500);
    let pa = analytic_profile(&a, line, grid);
    let pb = analytic_profile(&b, line, grid);
    let verdict = solve_pair(&pa, &pb, &SolverConfig::default()).unwrap();
    match verdict.rotations() {
        Some(rots) => println!(
            "\ngeometry: COMPATIBLE — rotate {} by {:.0}° ({}) and the comm phases never collide",
            b.label(),
            rots[1].degrees,
            rots[1].shift
        ),
        None => println!(
            "\ngeometry: INCOMPATIBLE — at least {:.0}% of the circle must stay contended",
            verdict.overlap_fraction() * 100.0
        ),
    }

    // 3. Simulate fair vs unfair DCQCN.
    let median = |variants: [CcVariant; 2]| -> Vec<f64> {
        let jobs = [RateJob::new(a, variants[0]), RateJob::new(b, variants[1])];
        let mut sim = RateSimulator::new(RateSimConfig::default(), &jobs);
        assert!(sim.run_until_iterations(20, Dur::from_secs(120)));
        (0..2)
            .map(|i| {
                let times: Vec<_> = sim
                    .progress(i)
                    .iteration_times()
                    .into_iter()
                    .skip(4)
                    .collect();
                Cdf::from_samples(times).median().as_millis_f64()
            })
            .collect()
    };
    let fair = median([CcVariant::Fair, CcVariant::Fair]);
    let unfair = median([
        CcVariant::StaticUnfair {
            timer: Dur::from_micros(100),
        },
        CcVariant::Fair,
    ]);
    println!(
        "\n{:<12} {:>12} {:>12} {:>9}",
        "job", "fair", "unfair", "speedup"
    );
    for i in 0..2 {
        println!(
            "{:<12} {:>9.0} ms {:>9.0} ms {:>8.2}×",
            [a, b][i].label(),
            fair[i],
            unfair[i],
            fair[i] / unfair[i]
        );
    }
    println!(
        "\nThe unfair run converges to dedicated-network pace for both jobs —\n\
         the paper's 'surprising payoff of unfairness' (§2)."
    );
}
