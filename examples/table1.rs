//! Reproduces Table 1: five job groups under fair vs ordered-unfair DCQCN,
//! with the geometry solver's compatibility prediction alongside the
//! measured outcome.
//!
//! ```sh
//! cargo run --release --example table1 [iterations]
//! ```
//!
//! `iterations` defaults to 30 per scenario (the DLRM group simulates
//! ≈ 40 s of cluster time per scenario at that setting).

use mlcc::experiments::table1::{run, Table1Config};

fn main() {
    let iterations: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("iterations must be a number"))
        .unwrap_or(30);
    let cfg = Table1Config {
        iterations,
        ..Table1Config::default()
    };
    println!(
        "Table 1 — each group shares one 50 Gbps link; unfair scenario orders \
         aggressiveness by row (T from {} to {})\n",
        cfg.timer_range.0, cfg.timer_range.1
    );
    let r = run(&cfg);
    println!("{}", r.render());
    let agree = r.groups.iter().filter(|g| g.prediction_agrees()).count();
    println!(
        "geometry solver agrees with the measured compatibility verdict in {}/{} groups",
        agree,
        r.groups.len()
    );
}
