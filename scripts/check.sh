#!/usr/bin/env bash
# Repo-wide lint + test gate. Run before pushing; CI runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== golden RunSummary regression (tests/goldens) =="
cargo test -q --test run_summary_golden

echo "OK"
