#!/usr/bin/env bash
# Repo-wide lint + test gate. Run before pushing; CI runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== golden RunSummary regression (tests/goldens) =="
cargo test -q --test run_summary_golden

echo "== parallel determinism gate (--jobs 1 vs --jobs 4 byte-identical) =="
cargo build --release -q
BIN=target/release/mlcc-repro
GATE=$(mktemp -d)
trap 'rm -rf "$GATE"' EXIT
for j in 1 4; do
    mkdir -p "$GATE/j$j"
    # BENCH_*.json carry wall-clock and the job count, so they are
    # expected to differ; everything else must be byte-identical.
    "$BIN" all --iterations 10 --jobs "$j" \
        --csv "$GATE/j$j/csv" --summary "$GATE/j$j/run.json" \
        | sed "s#$GATE/j$j#OUT#g" > "$GATE/j$j/stdout.txt"
done
diff -r "$GATE/j1/csv" "$GATE/j4/csv"
diff "$GATE/j1/run.json" "$GATE/j4/run.json"
diff "$GATE/j1/stdout.txt" "$GATE/j4/stdout.txt"
echo "byte-identical across --jobs 1 and --jobs 4"

echo "== timing-wheel determinism gate (wheel vs heap JSONL byte-diff) =="
for b in wheel heap; do
    cargo run -q --release -p netsim --example packet_trace -- "$b" 1 "$GATE/trace_$b.jsonl"
done
cmp "$GATE/trace_wheel.jsonl" "$GATE/trace_heap.jsonl"
echo "traced packet run byte-identical across queue backends at train_packets=1"

echo "== paper-scale packet validation wall-clock budget smoke =="
PAPER_T0=$(date +%s.%N)
cargo test -q --release --test packet_validation paper_scale_mix_agrees_with_batching \
    > /dev/null
PAPER_WALL=$(awk -v t0="$PAPER_T0" -v t1="$(date +%s.%N)" 'BEGIN { print t1 - t0 }')
PAPER_BUDGET=60
echo "paper-scale packet test: ${PAPER_WALL}s wall clock incl. build (budget ${PAPER_BUDGET}s)"
awk -v w="$PAPER_WALL" -v b="$PAPER_BUDGET" 'BEGIN { exit !(w <= b) }' || {
    echo "paper-scale packet test blew the ${PAPER_BUDGET}s wall-clock budget: ${PAPER_WALL}s" >&2
    exit 1
}

echo "== fig1 wall-clock budget smoke =="
"$BIN" fig1 --iterations 100 --summary-dir "$GATE/bench" > /dev/null
WALL=$(grep -o '"wall_clock_secs":[0-9.eE+-]*' "$GATE/bench/BENCH_fig1.json" | cut -d: -f2)
BUDGET=30
echo "fig1 (100 iterations): ${WALL}s wall clock (budget ${BUDGET}s)"
awk -v w="$WALL" -v b="$BUDGET" 'BEGIN { exit !(w <= b) }' || {
    echo "fig1 blew the ${BUDGET}s wall-clock budget: ${WALL}s" >&2
    exit 1
}

echo "== chaos none byte-identity gate (fig1 + table1 trace JSONL) =="
for e in fig1 table1; do
    "$BIN" "$e" --iterations 10 --trace "$GATE/${e}_plain.jsonl" > /dev/null
    "$BIN" "$e" --iterations 10 --chaos none --trace "$GATE/${e}_none.jsonl" > /dev/null
    "$BIN" "$e" --iterations 10 --chaos stragglers --chaos-seed 3 \
        --trace "$GATE/${e}_perturbed.jsonl" > /dev/null
    cmp "$GATE/${e}_plain.jsonl" "$GATE/${e}_none.jsonl"
    if cmp -s "$GATE/${e}_plain.jsonl" "$GATE/${e}_perturbed.jsonl"; then
        echo "$e: seeded chaos run is identical to the quiet run — injection is inert" >&2
        exit 1
    fi
done
echo "chaos=none byte-identical to no flag; seeded chaos perturbs"

echo "== chaos matrix (seeds × profiles) with wall-clock budget =="
CHAOS_T0=$(date +%s.%N)
"$BIN" chaos --iterations 40 --summary-dir "$GATE/bench" > /dev/null
CHAOS_WALL=$(awk -v t0="$CHAOS_T0" -v t1="$(date +%s.%N)" 'BEGIN { print t1 - t0 }')
CHAOS_BUDGET=90
echo "chaos matrix: ${CHAOS_WALL}s wall clock (budget ${CHAOS_BUDGET}s)"
awk -v w="$CHAOS_WALL" -v b="$CHAOS_BUDGET" 'BEGIN { exit !(w <= b) }' || {
    echo "chaos matrix blew the ${CHAOS_BUDGET}s wall-clock budget: ${CHAOS_WALL}s" >&2
    exit 1
}
REC=$(grep -o '"all_recovered":[0-9.eE+-]*' "$GATE/bench/BENCH_chaos.json" | cut -d: -f2)
awk -v r="$REC" 'BEGIN { exit !(r == 1) }' || {
    echo "chaos matrix: a perturbed cell never recovered (all_recovered=$REC)" >&2
    exit 1
}
echo "all chaos cells recovered"

echo "== snapshot fork byte-identity gate (restore ≡ re-simulated prefix) =="
# Restoring the shared-prefix snapshot must reproduce exactly the bytes of
# re-simulating the prefix in every cell (--fork-replay), at any worker
# count. fig1 covers the engine round-trip; the chaos sweep covers the
# barrier mutation path and map_forked.
mkdir -p "$GATE/fork"
"$BIN" fig1 --iterations 10 --fork-at 100ms \
    --trace "$GATE/fork/fig1_forked.jsonl" > /dev/null
"$BIN" fig1 --iterations 10 --fork-at 100ms --fork-replay \
    --trace "$GATE/fork/fig1_replay.jsonl" > /dev/null
cmp "$GATE/fork/fig1_forked.jsonl" "$GATE/fork/fig1_replay.jsonl"
"$BIN" chaos --iterations 20 --fork-at 200ms --jobs 1 \
    --trace "$GATE/fork/chaos_j1.jsonl" > /dev/null
"$BIN" chaos --iterations 20 --fork-at 200ms --jobs 4 \
    --trace "$GATE/fork/chaos_j4.jsonl" > /dev/null
"$BIN" chaos --iterations 20 --fork-at 200ms --fork-replay --jobs 1 \
    --trace "$GATE/fork/chaos_replay.jsonl" > /dev/null
cmp "$GATE/fork/chaos_j1.jsonl" "$GATE/fork/chaos_j4.jsonl"
cmp "$GATE/fork/chaos_j1.jsonl" "$GATE/fork/chaos_replay.jsonl"
echo "forked runs byte-identical (fig1 + chaos, --jobs 1/4, replay baseline)"

echo "== snapshot speedup budget (forked 16-cell sweep, single worker) =="
"$BIN" snapshot --jobs 1 --summary-dir "$GATE/bench" > /dev/null
SPEEDUP=$(grep -o '"speedup":[0-9.eE+-]*' "$GATE/bench/BENCH_snapshot.json" | cut -d: -f2)
IDENT=$(grep -o '"byte_identical":[0-9.eE+-]*' "$GATE/bench/BENCH_snapshot.json" | cut -d: -f2)
SNAP_BUDGET=3
awk -v s="$SPEEDUP" -v i="$IDENT" -v b="$SNAP_BUDGET" 'BEGIN { exit !(s >= b && i == 1) }' || {
    echo "snapshot bench: ${SPEEDUP}x (budget ${SNAP_BUDGET}x), byte_identical=$IDENT" >&2
    exit 1
}
echo "forked sweep ${SPEEDUP}x faster than replaying the prefix, byte-identical"

echo "== live tap byte-identity gate (--watch --slo leaves outputs untouched) =="
mkdir -p "$GATE/tap_plain" "$GATE/tap_live"
"$BIN" fig1 --iterations 10 \
    --trace "$GATE/tap_plain/run.jsonl" --summary "$GATE/tap_plain/run.json" \
    | sed "s#$GATE/tap_plain#OUT#g" > "$GATE/tap_plain/stdout.txt"
"$BIN" fig1 --iterations 10 \
    --trace "$GATE/tap_live/run.jsonl" --summary "$GATE/tap_live/run.json" \
    --watch --slo scripts/slo_default.toml --flight "$GATE/flight.jsonl" \
    2> /dev/null \
    | sed "s#$GATE/tap_live#OUT#g" > "$GATE/tap_live/stdout.txt"
cmp "$GATE/tap_plain/run.jsonl" "$GATE/tap_live/run.jsonl"
diff "$GATE/tap_plain/run.json" "$GATE/tap_live/run.json"
diff "$GATE/tap_plain/stdout.txt" "$GATE/tap_live/stdout.txt"
test -s "$GATE/flight.jsonl"
echo "trace, summary, and stdout byte-identical with the live tap on; flight dump written"

echo "== SLO-gated chaos run (recovery alerts within golden count) =="
SLO_CODE=0
"$BIN" chaos --iterations 40 --slo scripts/slo_chaos.toml \
    --alerts "$GATE/alerts.jsonl" > /dev/null 2>&1 || SLO_CODE=$?
if [ "$SLO_CODE" -ne 4 ]; then
    echo "SLO-gated chaos run: expected breach exit code 4, got $SLO_CODE" >&2
    exit 1
fi
ALERTS=$(grep -c '"alert":' "$GATE/alerts.jsonl")
ALERT_GOLDEN=4
if [ "$ALERTS" -lt 1 ] || [ "$ALERTS" -gt "$ALERT_GOLDEN" ]; then
    echo "SLO-gated chaos run: $ALERTS alerts outside [1, $ALERT_GOLDEN]" >&2
    exit 1
fi
grep -q '"alert":"recovery_stall"' "$GATE/alerts.jsonl"
grep -q '"type":"link_capacity"' "$GATE/alerts.jsonl"
echo "chaos breached the recovery SLO: $ALERTS alert(s) (golden max $ALERT_GOLDEN), context holds the fault"

echo "== explain determinism + golden blame table + conservation gate =="
# `explain` exits nonzero if any scenario's blame components fail to sum
# to the measured iteration times within 1%, so running it IS the
# conservation check. Its output must also be byte-stable across worker
# counts and match the committed golden blame table.
"$BIN" explain fig1 --iterations 20 --jobs 1 > "$GATE/explain_j1.txt"
"$BIN" explain fig1 --iterations 20 --jobs 4 > "$GATE/explain_j4.txt"
cmp "$GATE/explain_j1.txt" "$GATE/explain_j4.txt"
diff tests/goldens/fig1_explain.txt "$GATE/explain_j1.txt" || {
    echo "explain drifted from the golden blame table; if intentional:" >&2
    echo "  $BIN explain fig1 --iterations 20 > tests/goldens/fig1_explain.txt" >&2
    exit 1
}
grep -q "conservation: .* (PASS" "$GATE/explain_j1.txt"
echo "explain byte-identical across --jobs, matches golden, conserves time"

echo "== offline report summaries land in the trend warehouse =="
rm -rf "$GATE/rpt"
mkdir -p "$GATE/rpt"
"$BIN" fig1 --iterations 10 --trace "$GATE/rpt/run.jsonl" > /dev/null
"$BIN" report "$GATE/rpt/run.jsonl" --out "$GATE/rpt/run.html" \
    --summary "$GATE/rpt/run.json" > /dev/null
grep -q '"kind":"summary"' "$GATE/rpt/HISTORY.jsonl" || {
    echo "report --summary did not append to HISTORY.jsonl" >&2
    exit 1
}
echo "report --summary feeds HISTORY.jsonl"

echo "== trend warehouse determinism + injected-regression gate =="
rm -rf "$GATE/hist"
"$BIN" fig1 --iterations 10 --summary-dir "$GATE/hist" > /dev/null
"$BIN" fig1 --iterations 10 --summary-dir "$GATE/hist" > /dev/null
"$BIN" trend "$GATE/hist/HISTORY.jsonl" --wall-tolerance 10 > "$GATE/trend1.txt"
"$BIN" trend "$GATE/hist/HISTORY.jsonl" --wall-tolerance 10 > "$GATE/trend2.txt"
diff "$GATE/trend1.txt" "$GATE/trend2.txt"
tail -n1 "$GATE/hist/HISTORY.jsonl" \
    | sed -E 's/"wall_clock_secs":[0-9.eE+-]+/"wall_clock_secs":9999.0/' \
    >> "$GATE/hist/HISTORY.jsonl"
if "$BIN" trend "$GATE/hist/HISTORY.jsonl" --wall-tolerance 10 > /dev/null; then
    echo "trend gate: injected 9999s wall-clock regression went unflagged" >&2
    exit 1
fi
echo "trend verdict deterministic across identical runs; injected regression flagged"

echo "== shard byte-identity gate (--shards 1 vs 4, incl. --jobs/--fork-at) =="
# The shard plan is a pure function of the topology, so the merged trace
# must be byte-identical at any worker count — also when composed with
# scenario-level parallelism (--jobs) and a snapshot barrier (--fork-at).
mkdir -p "$GATE/shard"
"$BIN" shard --iterations 2 --shards 1 --trace "$GATE/shard/s1.jsonl" > /dev/null
"$BIN" shard --iterations 2 --shards 4 --trace "$GATE/shard/s4.jsonl" > /dev/null
"$BIN" shard --iterations 2 --shards 4 --jobs 4 --fork-at 20ms \
    --trace "$GATE/shard/s4_composed.jsonl" > /dev/null
cmp "$GATE/shard/s1.jsonl" "$GATE/shard/s4.jsonl"
cmp "$GATE/shard/s1.jsonl" "$GATE/shard/s4_composed.jsonl"
echo "sharded trace byte-identical across --shards 1/4, --jobs, --fork-at"

echo "== shard speedup gate (paper-scale decomposition, BENCH_shard) =="
"$BIN" shard --shards 4 --summary-dir "$GATE/bench" > /dev/null
SH_SPEEDUP=$(grep -o '"speedup":[0-9.eE+-]*' "$GATE/bench/BENCH_shard.json" | cut -d: -f2)
SH_IDENT=$(grep -o '"byte_identical":[0-9.eE+-]*' "$GATE/bench/BENCH_shard.json" | cut -d: -f2)
SH_STATS=$(grep -o '"stats_match":[0-9.eE+-]*' "$GATE/bench/BENCH_shard.json" | cut -d: -f2)
SH_BUDGET=2
awk -v s="$SH_SPEEDUP" -v i="$SH_IDENT" -v m="$SH_STATS" -v b="$SH_BUDGET" \
    'BEGIN { exit !(s >= b && i == 1 && m == 1) }' || {
    echo "shard bench: ${SH_SPEEDUP}x (budget ${SH_BUDGET}x)," \
        "byte_identical=$SH_IDENT, stats_match=$SH_STATS" >&2
    exit 1
}
echo "sharded paper-scale run ${SH_SPEEDUP}x faster than the global solve, byte-identical"

echo "== variants zoo gate (determinism, mltcp-beats-fair, wall-clock budget) =="
# The seven-cell controller matrix must be byte-identical across worker
# counts and shard counts, the MLTCP-style cell must beat fair on mean
# iteration time (the paper-adjacent claim BENCH_variants.json records),
# and the sweep must stay inside its wall-clock budget. The pinned golden
# summary (tests/goldens/variants.json) is gated by run_summary_golden
# above.
mkdir -p "$GATE/var"
VAR_T0=$(date +%s.%N)
# "wrote <path>" lines name the (differing) output files; the sweep
# table above them must be byte-identical.
"$BIN" variants --iterations 12 --jobs 1 --trace "$GATE/var/j1.jsonl" \
    --summary-dir "$GATE/var" | grep -v '^wrote ' > "$GATE/var/stdout_j1.txt"
VAR_WALL=$(awk -v t0="$VAR_T0" -v t1="$(date +%s.%N)" 'BEGIN { print t1 - t0 }')
"$BIN" variants --iterations 12 --jobs 4 --trace "$GATE/var/j4.jsonl" \
    | grep -v '^wrote ' > "$GATE/var/stdout_j4.txt"
"$BIN" variants --iterations 12 --shards 4 --trace "$GATE/var/s4.jsonl" \
    > /dev/null
cmp "$GATE/var/j1.jsonl" "$GATE/var/j4.jsonl"
cmp "$GATE/var/j1.jsonl" "$GATE/var/s4.jsonl"
diff "$GATE/var/stdout_j1.txt" "$GATE/var/stdout_j4.txt"
MLTCP=$(grep -o '"mltcp.speedup_vs_fair":[0-9.eE+-]*' \
    "$GATE/var/BENCH_variants.json" | cut -d: -f2)
awk -v s="$MLTCP" 'BEGIN { exit !(s >= 1.05) }' || {
    echo "variants: mltcp no longer beats fair (speedup_vs_fair=$MLTCP)" >&2
    exit 1
}
VAR_BUDGET=60
echo "variants sweep: ${VAR_WALL}s wall clock (budget ${VAR_BUDGET}s), mltcp ${MLTCP}x vs fair"
awk -v w="$VAR_WALL" -v b="$VAR_BUDGET" 'BEGIN { exit !(w <= b) }' || {
    echo "variants sweep blew the ${VAR_BUDGET}s wall-clock budget: ${VAR_WALL}s" >&2
    exit 1
}
echo "zoo sweep byte-identical across --jobs/--shards, mltcp beats fair"

echo "OK"
