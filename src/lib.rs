//! Root facade crate (`mlcc-repro`): hosts the repository-level `examples/`
//! and `tests/` directories and re-exports every workspace crate so that
//! examples and integration tests can reach the whole public API through one
//! dependency.

pub use dcqcn;
pub use diagnostics;
pub use eventsim;
pub use faults;
pub use geometry;
pub use mlcc;
pub use netsim;
pub use scheduler;
pub use simtime;
pub use telemetry;
pub use topology;
pub use workload;
