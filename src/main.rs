//! `mlcc-repro` — command-line driver for every reproduction experiment.
//!
//! ```text
//! mlcc-repro <command> [--iterations N] [--jobs N] [--csv DIR]
//!                      [--trace FILE] [--metrics] [--profile]
//!                      [--report FILE] [--summary FILE] [--summary-dir DIR]
//!                      [--chaos PROFILE|FILE.toml] [--chaos-seed N]
//!
//! commands:
//!   fig1       Fig. 1: bandwidth shares + iteration-time CDFs
//!   fig2       Fig. 2: the sliding effect
//!   table1     Table 1: five job groups, measured + predicted
//!   geometry   Figs. 3–5: circles, rotations, unified circle
//!   adaptive   §4.i  adaptively unfair congestion control
//!   priority   §4.ii switch priority queues
//!   flowsched  §4.iii flow scheduling from rotation angles
//!   cluster    §5    compatibility-aware placement
//!   pipelining extension: bucketized emission widens compatibility
//!   chaos      fault-injection sweep: seeds × profiles through the
//!              recovery analyzer
//!   all        everything above, in order
//!   report     analyze a recorded JSONL trace into an HTML report
//!   diff       compare two RunSummary JSON files (regression gate),
//!              or two JSONL traces (first divergent event)
//!   trend      diff the last K records per experiment in a
//!              bench/HISTORY.jsonl warehouse (regression trend gate)
//! ```
//!
//! `--csv DIR` additionally writes the raw data series (traces, CDFs,
//! tables) as CSV files for plotting.
//!
//! `--trace FILE` records the run's telemetry events (ECN marks, CNPs,
//! rate changes, phase transitions, solver passes) to `FILE`: a `.jsonl`
//! extension selects line-delimited JSON, anything else a Chrome trace
//! viewable in Perfetto / `chrome://tracing`. `--metrics` prints the
//! aggregated metrics table; `--profile` prints the per-engine wall-clock
//! breakdown.
//!
//! `--report FILE` writes a self-contained HTML run report (phase
//! timelines, rate sparklines, analyzer verdicts); `--summary FILE` writes
//! the compact `RunSummary` JSON that `mlcc-repro diff` compares. All five
//! observability flags imply event recording.
//!
//! `--summary-dir DIR` writes a machine-readable `BENCH_<experiment>.json`
//! per experiment (median iteration times, speedups, wall-clock) — the
//! perf trajectory documented in EXPERIMENTS.md.
//!
//! `--chaos` injects deterministic faults into `fig1` and `table1` (and
//! any rate-engine experiment that honours it): pass a builtin profile
//! name (`none`, `stragglers`, `links`, `mixed`) or a chaos TOML file
//! (format in `crates/faults/src/toml.rs`). `--chaos-seed N` re-seeds
//! the chosen config. `--chaos none` (the default) is byte-identical to
//! not passing the flag at all.
//!
//! `--jobs N` caps the worker threads the experiments fan their
//! independent scenarios across (default: one per available core).
//! Results, telemetry, and every output file are byte-identical for any
//! `N` — only the wall-clock changes. `--jobs 1` forces a serial run.
//!
//! ## Live observability
//!
//! `--watch` streams periodic progress lines to **stderr** while the run
//! executes (events mirrored, scenarios seen, alerts fired) — including
//! for `--jobs N` parallel sweeps, whose per-scenario status fans in over
//! the live channel. `--slo FILE.toml` loads declarative SLO rules
//! (schema in `crates/diagnostics/src/watchdog.rs`) and evaluates them
//! online against the event stream; any violation fires a typed alert
//! carrying the flight-recorder context around the trigger, and the
//! process exits with code 4. `--alerts FILE` dumps the fired alerts and
//! their context as JSONL; `--flight FILE` dumps the full flight-recorder
//! snapshot (last-N events per category per scenario). The live tap is
//! purely observational: stdout and every output file stay byte-identical
//! with or without these flags.
//!
//! ```text
//! mlcc-repro report trace.jsonl --out report.html [--summary run.json]
//! mlcc-repro diff a.json b.json [--tolerance 0.05]
//! mlcc-repro diff a.jsonl b.jsonl
//! mlcc-repro trend [bench/HISTORY.jsonl] [--last K] [--tolerance F]
//!                  [--wall-tolerance F] [--experiment NAME]
//! ```
//!
//! `diff` exits 0 when every shared metric agrees within tolerance and the
//! key sets match, non-zero otherwise — wire it into CI against committed
//! golden summaries. Given two `.jsonl` traces it instead reports the
//! first divergent event (sequence number + both payloads).
//!
//! `trend` reads the cross-run warehouse that `--summary-dir` and
//! `--summary` productions append to (`HISTORY.jsonl` beside the written
//! file), compares each experiment's latest record against the median of
//! its prior records in the window, and exits non-zero on a wall-clock or
//! quality regression beyond tolerance.

use diagnostics::history::{self, HistoryRecord, TrendConfig};
use diagnostics::watchdog::{slo_from_toml_str, Alert, SloRules, WatchdogBank};
use diagnostics::{AnalysisConfig, DiffConfig, RunSummary};
use faults::ChaosConfig;
use mlcc::experiments as exp;
use mlcc::export;
use simtime::Dur;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};
use telemetry::live::{self, LiveConfig, LiveHandle};
use telemetry::{BufferRecorder, Profiler, TapRecorder};

/// The CLI's recorder: a buffering recorder wrapped in a live tap, so the
/// flight recorder / watchdog observe the stream as it is produced.
/// When no live sink is installed the tap is inert passthrough.
type CliRecorder = TapRecorder<BufferRecorder>;

struct Opts {
    iterations: Option<usize>,
    jobs: Option<usize>,
    /// Worker threads for intra-scenario sharding. Only affects wall
    /// clock: the shard plan is a pure function of the topology, so
    /// output is byte-identical at any value.
    shards: Option<usize>,
    csv: Option<PathBuf>,
    trace: Option<PathBuf>,
    metrics: bool,
    profile: bool,
    report: Option<PathBuf>,
    summary: Option<PathBuf>,
    summary_dir: Option<PathBuf>,
    chaos: ChaosConfig,
    watch: bool,
    slo: Option<SloRules>,
    alerts: Option<PathBuf>,
    flight: Option<PathBuf>,
    /// Fork the sweep from a shared clean prefix at this simulated time
    /// (fig1, chaos, snapshot commands).
    fork_at: Option<Dur>,
    /// Re-simulate the prefix in every cell instead of restoring the
    /// snapshot — the byte-identity baseline for `--fork-at`.
    fork_replay: bool,
}

impl Opts {
    /// Any flag that needs the live event channel up.
    fn live_enabled(&self) -> bool {
        self.watch || self.slo.is_some() || self.alerts.is_some() || self.flight.is_some()
    }

    /// A recorder when any observability flag asked for one.
    fn recorder(&self) -> Option<CliRecorder> {
        (self.trace.is_some()
            || self.metrics
            || self.profile
            || self.report.is_some()
            || self.summary.is_some()
            || self.live_enabled())
        .then(|| TapRecorder::new(BufferRecorder::new()))
    }
}

/// Resolves a `--chaos` argument: a builtin profile name
/// ([`ChaosConfig::profile`]) or a path to a chaos TOML file.
fn parse_chaos(value: &str) -> Result<ChaosConfig, String> {
    if let Some(cfg) = ChaosConfig::profile(value) {
        return Ok(cfg);
    }
    let text = std::fs::read_to_string(value).map_err(|e| {
        format!("--chaos {value}: not a builtin profile, and reading it failed: {e}")
    })?;
    faults::from_toml_str(&text).map_err(|e| format!("--chaos {value}: {e}"))
}

/// Parses a simulated duration with a unit suffix: `250us`, `120ms`,
/// `2s`, or bare nanoseconds (`500000ns` or `500000`).
fn parse_dur(s: &str) -> Result<Dur, String> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("us") {
        (d, 1_000u64)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1)
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("{s}: expected a duration like 250us, 120ms or 2s"))?;
    n.checked_mul(mult)
        .map(Dur::from_nanos)
        .ok_or_else(|| format!("{s}: duration overflows"))
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        iterations: None,
        jobs: None,
        shards: None,
        csv: None,
        trace: None,
        metrics: false,
        profile: false,
        report: None,
        summary: None,
        summary_dir: None,
        chaos: ChaosConfig::none(),
        watch: false,
        slo: None,
        alerts: None,
        flight: None,
        fork_at: None,
        fork_replay: false,
    };
    let mut chaos_seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iterations" => {
                let v = it.next().ok_or("--iterations needs a value")?;
                opts.iterations = Some(v.parse().map_err(|_| format!("bad iteration count {v}"))?);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad job count {v}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = Some(n);
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad shard count {v}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                opts.shards = Some(n);
            }
            "--csv" => {
                let v = it.next().ok_or("--csv needs a directory")?;
                opts.csv = Some(PathBuf::from(v));
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a file path")?;
                opts.trace = Some(PathBuf::from(v));
            }
            "--metrics" => opts.metrics = true,
            "--profile" => opts.profile = true,
            "--report" => {
                let v = it.next().ok_or("--report needs a file path")?;
                opts.report = Some(PathBuf::from(v));
            }
            "--summary" => {
                let v = it.next().ok_or("--summary needs a file path")?;
                opts.summary = Some(PathBuf::from(v));
            }
            "--summary-dir" => {
                let v = it.next().ok_or("--summary-dir needs a directory")?;
                opts.summary_dir = Some(PathBuf::from(v));
            }
            "--chaos" => {
                let v = it.next().ok_or("--chaos needs a profile name or file")?;
                opts.chaos = parse_chaos(v)?;
            }
            "--chaos-seed" => {
                let v = it.next().ok_or("--chaos-seed needs a value")?;
                chaos_seed = Some(v.parse().map_err(|_| format!("bad chaos seed {v}"))?);
            }
            "--watch" => opts.watch = true,
            "--slo" => {
                let v = it.next().ok_or("--slo needs a rules TOML file")?;
                let text = std::fs::read_to_string(v)
                    .map_err(|e| format!("--slo {v}: reading it failed: {e}"))?;
                opts.slo = Some(slo_from_toml_str(&text).map_err(|e| format!("--slo {v}: {e}"))?);
            }
            "--alerts" => {
                let v = it.next().ok_or("--alerts needs a file path")?;
                opts.alerts = Some(PathBuf::from(v));
            }
            "--flight" => {
                let v = it.next().ok_or("--flight needs a file path")?;
                opts.flight = Some(PathBuf::from(v));
            }
            "--fork-at" => {
                let v = it.next().ok_or("--fork-at needs a duration (e.g. 120ms)")?;
                let d = parse_dur(v).map_err(|e| format!("--fork-at {e}"))?;
                if d.is_zero() {
                    return Err("--fork-at must be positive".to_string());
                }
                opts.fork_at = Some(d);
            }
            "--fork-replay" => opts.fork_replay = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if let Some(seed) = chaos_seed {
        opts.chaos.seed = seed;
    }
    if opts.fork_replay && opts.fork_at.is_none() {
        return Err("--fork-replay requires --fork-at".to_string());
    }
    Ok(opts)
}

/// Writes `content` to `path`, creating parent directories as needed.
fn write_file(path: &Path, content: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, content).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// Appends one record to the cross-run warehouse `HISTORY.jsonl` beside
/// the summary/bench file just written (`beside`'s directory).
fn append_history(beside: &Path, record: &HistoryRecord) -> Result<(), String> {
    use std::io::Write as _;
    let dir = match beside.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join("HISTORY.jsonl");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("opening {}: {e}", path.display()))?;
    f.write_all(record.to_line().as_bytes())
        .map_err(|e| format!("appending to {}: {e}", path.display()))
}

/// Canonical hash of the CLI configuration that produced a run, as an
/// f64-safe metric value. Both `--summary` output and the forked-sweep
/// prefix cache key on [`simtime::hash::config_hash`], so "same
/// configuration" means the same thing in a report and in the cache.
fn cli_config_hash(cmd: &str, opts: &Opts) -> f64 {
    let desc = format!(
        "{cmd}|iterations={:?}|chaos={:?}|fork_at={:?}|fork_replay={}",
        opts.iterations, opts.chaos, opts.fork_at, opts.fork_replay
    );
    simtime::hash::config_hash(&desc) as f64
}

/// Writes the trace file, HTML report, and summary, and prints the
/// metrics / profiler reports the flags asked for.
fn report(cmd: &str, opts: &Opts, rec: &BufferRecorder) -> Result<(), String> {
    if let Some(path) = &opts.trace {
        let jsonl = path.extension().is_some_and(|e| e == "jsonl");
        let content = if jsonl {
            telemetry::export::jsonl(rec.events())
        } else {
            telemetry::export::chrome_trace(rec.events())
        };
        write_file(path, &content)?;
        println!(
            "wrote {} ({} events, {})",
            path.display(),
            rec.len(),
            if jsonl {
                "JSONL"
            } else {
                "Chrome trace — open in Perfetto or chrome://tracing"
            }
        );
    }
    if opts.report.is_some() || opts.summary.is_some() {
        let analysis = diagnostics::analyze(cmd, rec.events(), &AnalysisConfig::default());
        if let Some(path) = &opts.report {
            write_file(path, &diagnostics::html(&analysis))?;
            println!("wrote {} (HTML run report)", path.display());
        }
        if let Some(path) = &opts.summary {
            let mut summary = analysis.summary();
            summary.put("config.hash", cli_config_hash(cmd, opts));
            write_file(path, &summary.to_json())?;
            append_history(path, &HistoryRecord::from_summary(&summary, "summary"))?;
            println!("wrote {} (RunSummary JSON)", path.display());
        }
    }
    if opts.metrics {
        println!("== metrics ==");
        println!("{}", rec.metrics().render());
    }
    if opts.profile {
        let mut prof = Profiler::new();
        prof.absorb(rec);
        println!("== profile ==");
        println!("{}", prof.render());
    }
    Ok(())
}

/// Bench metrics one experiment contributes to its `BENCH_<name>.json`.
type BenchMetrics = Vec<(String, f64)>;

/// Writes `BENCH_<name>.json` under `dir` (schema in EXPERIMENTS.md).
fn write_bench(
    dir: &Path,
    name: &str,
    wall: std::time::Duration,
    metrics: &BenchMetrics,
) -> Result<(), String> {
    let mut s = RunSummary::new(name);
    s.put("wall_clock_secs", wall.as_secs_f64());
    for (k, v) in metrics {
        s.put(k, *v);
    }
    let path = dir.join(format!("BENCH_{name}.json"));
    write_file(&path, &s.to_json())?;
    append_history(&path, &HistoryRecord::from_summary(&s, "bench"))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn run_fig1(o: &Opts, rec: Option<&mut CliRecorder>) -> BenchMetrics {
    let cfg = exp::fig1::Fig1Config {
        iterations: o.iterations.unwrap_or(100),
        chaos: o.chaos,
        ..Default::default()
    };
    match o.fork_at {
        Some(at) => println!(
            "== Fig. 1 ({} iterations, fork at {at:?}{}) ==",
            cfg.iterations,
            if o.fork_replay { ", replay" } else { "" }
        ),
        None => println!("== Fig. 1 ({} iterations) ==", cfg.iterations),
    }
    let r = match (rec, o.fork_at) {
        (Some(rec), Some(at)) => exp::fig1::run_traced_forked(&cfg, rec, at, o.fork_replay),
        (None, Some(at)) => {
            exp::fig1::run_traced_forked(&cfg, telemetry::NoopRecorder, at, o.fork_replay)
        }
        (Some(rec), None) => exp::fig1::run_traced(&cfg, rec),
        (None, None) => exp::fig1::run(&cfg),
    };
    println!("{}", r.render());
    if let Some(dir) = &o.csv {
        for (name, sc) in [("fair", &r.fair), ("unfair", &r.unfair)] {
            for (i, s) in sc.stats.iter().enumerate() {
                let p = export::write_csv(
                    dir,
                    &format!("fig1d_{name}_j{i}.csv"),
                    &export::cdf_csv(&s.cdf),
                )
                .expect("write CSV");
                println!("wrote {}", p.display());
            }
            let p = export::write_csv(
                dir,
                &format!("fig1bc_{name}_rates.csv"),
                &export::multi_series_csv(&[&sc.traces[0], &sc.traces[1]], &["j1_gbps", "j2_gbps"]),
            )
            .expect("write CSV");
            println!("wrote {}", p.display());
        }
    }
    let mut m = BenchMetrics::new();
    for (i, s) in r.fair.stats.iter().enumerate() {
        m.push((format!("fair.job{i}.median_ms"), s.median_ms()));
    }
    for (i, s) in r.unfair.stats.iter().enumerate() {
        m.push((format!("unfair.job{i}.median_ms"), s.median_ms()));
    }
    for (i, s) in r.speedups().iter().enumerate() {
        m.push((format!("speedup.job{i}"), s.0));
    }
    m
}

fn run_fig2(o: &Opts, rec: Option<&mut CliRecorder>) -> BenchMetrics {
    let cfg = exp::fig2::Fig2Config {
        iterations: o.iterations.unwrap_or(6),
        ..Default::default()
    };
    println!("== Fig. 2 ({} iterations) ==", cfg.iterations);
    let r = match rec {
        Some(rec) => exp::fig2::run_traced(&cfg, rec),
        None => exp::fig2::run(&cfg),
    };
    println!("{}", r.render());
    if let Some(dir) = &o.csv {
        for (name, sc) in [("fair", &r.fair), ("unfair", &r.unfair)] {
            let p = export::write_csv(
                dir,
                &format!("fig2_{name}_rates.csv"),
                &export::multi_series_csv(&[&sc.traces[0], &sc.traces[1]], &["j1_gbps", "j2_gbps"]),
            )
            .expect("write CSV");
            println!("wrote {}", p.display());
        }
    }
    vec![(
        "interleaved_at_iteration".to_string(),
        r.interleaved_at().map_or(-1.0, |i| i as f64),
    )]
}

fn run_table1(o: &Opts, rec: Option<&mut CliRecorder>) -> BenchMetrics {
    let cfg = exp::table1::Table1Config {
        iterations: o.iterations.unwrap_or(30),
        chaos: o.chaos,
        ..Default::default()
    };
    println!("== Table 1 ({} iterations per scenario) ==", cfg.iterations);
    let r = match rec {
        Some(rec) => exp::table1::run_traced(&cfg, rec),
        None => exp::table1::run(&cfg),
    };
    println!("{}", r.render());
    if let Some(dir) = &o.csv {
        let mut rows = vec![vec![
            "job".to_string(),
            "fair_ms".to_string(),
            "unfair_ms".to_string(),
            "speedup".to_string(),
            "group_compatible".to_string(),
        ]];
        for g in &r.groups {
            for row in &g.rows {
                rows.push(vec![
                    row.label.clone(),
                    format!("{:.1}", row.fair.as_millis_f64()),
                    format!("{:.1}", row.unfair.as_millis_f64()),
                    format!("{:.3}", row.speedup.0),
                    g.fully_compatible_measured.to_string(),
                ]);
            }
        }
        let p = export::write_csv(dir, "table1.csv", &export::rows_csv(&rows)).expect("write CSV");
        println!("wrote {}", p.display());
    }
    let mut m = BenchMetrics::new();
    for (gi, g) in r.groups.iter().enumerate() {
        for (ri, row) in g.rows.iter().enumerate() {
            m.push((
                format!("group{gi}.job{ri}.fair_ms"),
                row.fair.as_millis_f64(),
            ));
            m.push((
                format!("group{gi}.job{ri}.unfair_ms"),
                row.unfair.as_millis_f64(),
            ));
            m.push((format!("group{gi}.job{ri}.speedup"), row.speedup.0));
        }
    }
    m
}

fn run_variants(o: &Opts, rec: Option<&mut CliRecorder>) -> BenchMetrics {
    let mut cfg = exp::variants::VariantsConfig::default();
    cfg.fig1.iterations = o.iterations.unwrap_or(30);
    cfg.fig1.chaos = o.chaos;
    println!(
        "== Congestion-control zoo ({} cells, {} iterations each) ==",
        cfg.cells.len(),
        cfg.fig1.iterations
    );
    let r = match rec {
        Some(rec) => exp::variants::run_traced(&cfg, rec),
        None => exp::variants::run(&cfg),
    };
    println!("{}", r.render());
    if let Some(dir) = &o.csv {
        let mut rows = vec![vec![
            "variant".to_string(),
            "mean_iter_ms".to_string(),
            "median_iter_ms".to_string(),
            "jain".to_string(),
            "time_to_interleave_ms".to_string(),
        ]];
        for v in &r.outcomes {
            rows.push(vec![
                v.name.clone(),
                format!("{:.3}", v.mean_iter_ms),
                format!("{:.3}", v.median_iter_ms),
                format!("{:.4}", v.jain),
                v.time_to_interleave_ms
                    .map_or("-1".to_string(), |ms| format!("{ms:.1}")),
            ]);
        }
        let p =
            export::write_csv(dir, "variants.csv", &export::rows_csv(&rows)).expect("write CSV");
        println!("wrote {}", p.display());
    }
    let mut m = BenchMetrics::new();
    for v in &r.outcomes {
        m.push((format!("{}.mean_iter_ms", v.name), v.mean_iter_ms));
        m.push((format!("{}.median_iter_ms", v.name), v.median_iter_ms));
        m.push((format!("{}.jain", v.name), v.jain));
        m.push((
            format!("{}.time_to_interleave_ms", v.name),
            v.time_to_interleave_ms.unwrap_or(-1.0),
        ));
        if v.name != "fair" {
            if let Some(s) = r.speedup_vs_fair(&v.name) {
                m.push((format!("{}.speedup_vs_fair", v.name), s));
            }
        }
    }
    m
}

fn run_geometry(_o: &Opts) -> BenchMetrics {
    println!("== Figs. 3–5 ==");
    let f3 = exp::geometry_demo::fig3(6);
    println!(
        "Fig. 3: VGG16 circle perimeter {} (comm {}), arcs stable: {}",
        f3.profile.period(),
        f3.profile.comm_time(),
        f3.per_iteration_checks.iter().all(|&(c, m)| !c && m)
    );
    let f4 = exp::geometry_demo::fig4();
    println!(
        "Fig. 4: {} ms overlap at rotation zero; solver: {}",
        f4.overlap_at_zero_ms,
        if f4.verdict.is_compatible() {
            "compatible"
        } else {
            "incompatible"
        }
    );
    let f5 = exp::geometry_demo::fig5();
    println!(
        "Fig. 5: unified circle {}, reps {:?}, J2 rotation {:.1}°",
        f5.perimeter,
        f5.repetitions,
        f5.verdict.rotations().expect("compatible")[1].degrees
    );
    vec![
        (
            "fig4.compatible".to_string(),
            f4.verdict.is_compatible() as u8 as f64,
        ),
        (
            "fig5.rotation_degrees".to_string(),
            f5.verdict.rotations().expect("compatible")[1].degrees,
        ),
    ]
}

fn run_adaptive(o: &Opts, rec: Option<&mut CliRecorder>) -> BenchMetrics {
    let cfg = exp::adaptive::AdaptiveConfig {
        iterations: o.iterations.unwrap_or(24),
        ..Default::default()
    };
    println!("== §4.i adaptive unfairness ==");
    let r = match rec {
        Some(rec) => exp::adaptive::run_traced(&cfg, rec),
        None => exp::adaptive::run(&cfg),
    };
    println!("{}", r.render());
    let mut m = BenchMetrics::new();
    for (i, s) in r.compatible_speedups().iter().enumerate() {
        m.push((format!("compatible.job{i}.speedup"), s.0));
    }
    let (stat, adpt) = r.victim_speedups();
    m.push(("incompatible.victim.static_speedup".to_string(), stat.0));
    m.push(("incompatible.victim.adaptive_speedup".to_string(), adpt.0));
    m
}

fn run_priority(o: &Opts, rec: Option<&mut CliRecorder>) -> BenchMetrics {
    let cfg = exp::priority::PriorityConfig {
        iterations: o.iterations.unwrap_or(20),
        ..Default::default()
    };
    println!("== §4.ii priority queues ==");
    let r = match rec {
        Some(rec) => exp::priority::run_traced(&cfg, rec),
        None => exp::priority::run(&cfg),
    };
    println!("{}", r.render());
    let mut m = BenchMetrics::new();
    for (i, s) in r.speedups().iter().enumerate() {
        m.push((format!("job{i}.fair_ms"), r.fair[i].median_ms()));
        m.push((
            format!("job{i}.prioritized_ms"),
            r.prioritized[i].median_ms(),
        ));
        m.push((format!("job{i}.speedup"), s.0));
    }
    m
}

fn run_flowsched(o: &Opts, rec: Option<&mut CliRecorder>) -> BenchMetrics {
    let cfg = exp::flowsched::FlowschedConfig {
        iterations: o.iterations.unwrap_or(20),
        ..Default::default()
    };
    println!("== §4.iii flow scheduling ==");
    let r = match rec {
        Some(rec) => exp::flowsched::run_traced(&cfg, rec),
        None => exp::flowsched::run(&cfg),
    };
    println!("{}", r.render());
    let mut m = BenchMetrics::new();
    for (i, s) in r.speedups().iter().enumerate() {
        m.push((format!("job{i}.fair_ms"), r.fair[i].median_ms()));
        m.push((format!("job{i}.scheduled_ms"), r.scheduled[i].median_ms()));
        m.push((format!("job{i}.speedup"), s.0));
    }
    m
}

fn run_pipelining(o: &Opts, rec: Option<&mut CliRecorder>) -> BenchMetrics {
    let cfg = exp::pipelining::PipeliningConfig {
        iterations: o.iterations.unwrap_or(16),
        ..Default::default()
    };
    println!("== pipelining extension ==");
    let r = match rec {
        Some(rec) => exp::pipelining::run_traced(&cfg, rec),
        None => exp::pipelining::run(&cfg),
    };
    println!("{}", r.render());
    vec![
        ("monolithic.max_tax".to_string(), r.monolithic.max_tax()),
        ("pipelined.max_tax".to_string(), r.pipelined.max_tax()),
    ]
}

fn run_cluster(o: &Opts, rec: Option<&mut CliRecorder>) -> BenchMetrics {
    let cfg = exp::cluster::ClusterConfig {
        iterations: o.iterations.unwrap_or(16),
        ..Default::default()
    };
    println!("== §5 cluster placement ==");
    let r = match rec {
        Some(rec) => exp::cluster::try_run_traced(&cfg, rec).unwrap_or_else(|e| panic!("{e}")),
        None => exp::cluster::run(&cfg),
    };
    println!("{}", r.render());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    vec![
        (
            "locality.mean_slowdown".to_string(),
            mean(&r.locality.slowdowns),
        ),
        (
            "compatibility.mean_slowdown".to_string(),
            mean(&r.compatibility.slowdowns),
        ),
    ]
}

fn run_chaos(o: &Opts, rec: Option<&mut CliRecorder>) -> BenchMetrics {
    let cfg = exp::chaos::ChaosSweepConfig {
        iterations: o.iterations.unwrap_or(40),
        ..Default::default()
    };
    println!(
        "== chaos sweep ({} iterations, {} seeds × {} profiles{}) ==",
        cfg.iterations,
        cfg.seeds.len(),
        cfg.profiles.len(),
        match o.fork_at {
            Some(at) if o.fork_replay => format!(", fork at {at:?}, replay"),
            Some(at) => format!(", fork at {at:?}"),
            None => String::new(),
        }
    );
    let r = match (rec, o.fork_at) {
        (Some(rec), Some(at)) => exp::chaos::run_forked(&cfg, rec, at, o.fork_replay),
        (None, Some(at)) => {
            exp::chaos::run_forked(&cfg, telemetry::NoopRecorder, at, o.fork_replay)
        }
        (Some(rec), None) => exp::chaos::run_traced(&cfg, rec),
        (None, None) => exp::chaos::run(&cfg),
    };
    println!("{}", r.render());
    let mut m = BenchMetrics::new();
    for c in &r.cells {
        let key = format!("{}.s{}", c.profile, c.seed);
        for (i, med) in c.medians_ms.iter().enumerate() {
            m.push((format!("{key}.job{i}.median_ms"), *med));
        }
        m.push((
            format!("{key}.fault_windows"),
            c.recovery.fault_windows.len() as f64,
        ));
        m.push((format!("{key}.incidents"), c.incidents() as f64));
        m.push((format!("{key}.worst_recovery_ms"), c.worst_recovery_ms()));
        m.push((
            format!("{key}.recovered"),
            c.recovery.all_recovered() as u8 as f64,
        ));
        m.push((
            format!("{key}.compat_break"),
            c.recovery.compatibility_break as u8 as f64,
        ));
    }
    m.push(("all_recovered".to_string(), r.all_recovered() as u8 as f64));
    m
}

/// The fork-from-prefix benchmark: runs a 16-cell chaos grid (4 seeds ×
/// 4 arrival-free profiles) twice — forked from a shared clean-prefix
/// snapshot, then with the prefix replayed per cell — byte-compares the
/// two telemetry streams, and reports the wall-clock speedup. The
/// `speedup` and `byte_identical` metrics in `BENCH_snapshot.json` are
/// the gate for the snapshot/restore machinery.
fn run_snapshot_bench(o: &Opts) -> BenchMetrics {
    let cfg = exp::chaos::ChaosSweepConfig {
        iterations: o.iterations.unwrap_or(40),
        seeds: vec![6, 16, 25, 33],
        profiles: ["none", "stragglers", "links", "signal"]
            .map(String::from)
            .to_vec(),
        ..Default::default()
    };
    let per_iter = cfg.jobs[0]
        .iteration_time_at(cfg.sim.capacity)
        .max(cfg.jobs[1].iteration_time_at(cfg.sim.capacity));
    // Default fork point: 90 % of the nominal sweep length — late enough
    // that the shared prefix dominates each cell's work, early enough
    // that every cell still has iterations (and its chaos) ahead of it.
    let fork_at = o
        .fork_at
        .unwrap_or(per_iter * (cfg.iterations as u64 * 9) / 10);
    println!(
        "== snapshot bench ({} cells, {} iterations, fork at {fork_at:?}) ==",
        cfg.seeds.len() * cfg.profiles.len(),
        cfg.iterations,
    );
    let mut forked_rec = BufferRecorder::new();
    let t0 = Instant::now();
    let forked = exp::chaos::run_forked(&cfg, &mut forked_rec, fork_at, false);
    let forked_wall = t0.elapsed();
    let mut replay_rec = BufferRecorder::new();
    let t0 = Instant::now();
    let replayed = exp::chaos::run_forked(&cfg, &mut replay_rec, fork_at, true);
    let replay_wall = t0.elapsed();

    let byte_identical = forked_rec.events() == replay_rec.events()
        && forked
            .cells
            .iter()
            .zip(&replayed.cells)
            .all(|(f, r)| f.medians_ms == r.medians_ms);
    let speedup = replay_wall.as_secs_f64() / forked_wall.as_secs_f64().max(1e-9);
    println!("{}", forked.render());
    println!(
        "forked {forked_wall:.2?} vs replayed {replay_wall:.2?}: {speedup:.2}x, {}",
        if byte_identical {
            "byte-identical"
        } else {
            "STREAMS DIVERGED"
        }
    );
    vec![
        ("cells".to_string(), forked.cells.len() as f64),
        ("fork_at_ms".to_string(), fork_at.as_millis_f64()),
        ("forked_wall_secs".to_string(), forked_wall.as_secs_f64()),
        ("replay_wall_secs".to_string(), replay_wall.as_secs_f64()),
        ("speedup".to_string(), speedup),
        ("byte_identical".to_string(), byte_identical as u8 as f64),
        (
            "all_recovered".to_string(),
            forked.all_recovered() as u8 as f64,
        ),
    ]
}

/// The sharding benchmark: a paper-scale cluster scenario (4 link-disjoint
/// groups × 24 jobs on the fluid engine, plus 4 replicas of the Table 1
/// packet mix) run three ways — as one global simulator, sharded with one
/// worker, and sharded with `--shards N` workers. Reports the algorithmic
/// speedup of the sharded decomposition over the global solve and
/// byte-compares the merged streams at 1 vs N workers. The `speedup` and
/// `byte_identical` metrics in `BENCH_shard.json` are the gate for the
/// sharding machinery. With a recorder attached (`--trace`), the sharded
/// runs record into it, so traces at different `--shards` values can be
/// diffed externally.
fn run_shard_bench(o: &Opts, rec: Option<&mut CliRecorder>) -> BenchMetrics {
    let cfg = exp::shard::ShardConfig {
        iterations: o.iterations.unwrap_or(4),
        chaos: o.chaos,
        fork_at: o.fork_at,
        ..exp::shard::ShardConfig::paper_scale()
    };
    let threads = mlcc::parallel::shards();
    let fluid = exp::shard::build_fluid(&cfg);
    let packet = exp::shard::build_packet(&cfg);
    println!(
        "== shard bench ({} fluid jobs in {} components, {} packet groups, \
         {} iterations, {threads} worker(s)) ==",
        fluid.plan.num_jobs(),
        fluid.plan.num_components(),
        packet.plan.num_components(),
        cfg.iterations,
    );

    // Wall-clock comparison, untraced on both sides: the global simulator
    // re-solves every transition over all jobs; shards solve only theirs.
    let t0 = Instant::now();
    let (baseline, _) = exp::shard::run_fluid_unsharded(&fluid, &cfg, telemetry::NoopRecorder);
    let unsharded_wall = t0.elapsed();
    let mut noop = telemetry::NoopRecorder;
    let t0 = Instant::now();
    let sharded = exp::shard::run_fluid_sharded(&fluid, &cfg, &mut noop, threads);
    let sharded_wall = t0.elapsed();
    let speedup = unsharded_wall.as_secs_f64() / sharded_wall.as_secs_f64().max(1e-9);

    // Byte identity: merged fluid + packet streams at 1 worker vs N.
    let mut one = BufferRecorder::new();
    exp::shard::run_fluid_sharded(&fluid, &cfg, &mut one, 1);
    let t0 = Instant::now();
    exp::shard::run_packet_sharded(&packet, &cfg, &mut one, 1);
    let packet_wall = t0.elapsed();
    let mut many = BufferRecorder::new();
    exp::shard::run_fluid_sharded(&fluid, &cfg, &mut many, threads);
    exp::shard::run_packet_sharded(&packet, &cfg, &mut many, threads);
    let byte_identical = one.events() == many.events() && one.counts() == many.counts();

    // Results parity: sharded and global runs agree on every job's stats.
    let stats_match = baseline
        .stats
        .iter()
        .zip(&sharded.stats)
        .all(|(a, b)| (a.median_ms() - b.median_ms()).abs() <= 1e-9 * a.median_ms().max(1.0));

    println!(
        "fluid: unsharded {unsharded_wall:.2?} vs sharded {sharded_wall:.2?}: \
         {speedup:.2}x, stats {}",
        if stats_match { "match" } else { "DIVERGED" }
    );
    println!(
        "merged streams at 1 vs {threads} worker(s): {} ({} events); packet {packet_wall:.2?}",
        if byte_identical {
            "byte-identical"
        } else {
            "STREAMS DIVERGED"
        },
        one.events().len(),
    );

    // With observability flags up, feed the sharded runs through the tap
    // so --trace/--summary reflect exactly what `--shards N` produces.
    if let Some(rec) = rec {
        exp::shard::run_fluid_sharded(&fluid, &cfg, rec, threads);
        exp::shard::run_packet_sharded(&packet, &cfg, rec, threads);
    }

    let mut m = vec![
        ("config.shards".to_string(), threads as f64),
        (
            "unsharded_wall_secs".to_string(),
            unsharded_wall.as_secs_f64(),
        ),
        ("sharded_wall_secs".to_string(), sharded_wall.as_secs_f64()),
        ("packet_wall_secs".to_string(), packet_wall.as_secs_f64()),
        ("speedup".to_string(), speedup),
        ("byte_identical".to_string(), byte_identical as u8 as f64),
        ("stats_match".to_string(), stats_match as u8 as f64),
        (
            "completed".to_string(),
            (baseline.completed && sharded.completed) as u8 as f64,
        ),
    ];
    for (k, v) in exp::shard::plan_metrics(&fluid.plan) {
        m.push((k.to_string(), v));
    }
    m
}

/// `mlcc-repro report TRACE.jsonl --out FILE [--summary FILE] [--name N]`
fn cmd_report(args: &[String]) -> Result<(), String> {
    let mut trace: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut summary: Option<PathBuf> = None;
    let mut name: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a file path")?)),
            "--summary" => {
                summary = Some(PathBuf::from(
                    it.next().ok_or("--summary needs a file path")?,
                ))
            }
            "--name" => name = Some(it.next().ok_or("--name needs a value")?.clone()),
            other if !other.starts_with("--") && trace.is_none() => {
                trace = Some(PathBuf::from(other))
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    let trace = trace.ok_or("report needs a JSONL trace file")?;
    let text =
        std::fs::read_to_string(&trace).map_err(|e| format!("reading {}: {e}", trace.display()))?;
    let events = telemetry::parse_jsonl(&text).map_err(|e| e.to_string())?;
    let run_name = name.unwrap_or_else(|| {
        trace
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "run".to_string())
    });
    let analysis = diagnostics::analyze(&run_name, &events, &AnalysisConfig::default());
    let out = out.unwrap_or_else(|| trace.with_extension("html"));
    write_file(&out, &diagnostics::html(&analysis))?;
    println!(
        "wrote {} ({} events, {} scenarios)",
        out.display(),
        events.len(),
        analysis.scenarios.len()
    );
    if let Some(path) = &summary {
        let mut s = analysis.summary();
        // Offline reports hash the trace content itself — there is no CLI
        // run configuration to hash, but the same canonical helper keeps
        // the metric comparable across warehouse entries.
        s.put("config.hash", simtime::hash::config_hash(&text) as f64);
        write_file(path, &s.to_json())?;
        // Offline report summaries feed the same cross-run warehouse as
        // live `--summary` runs, so trend analysis sees both.
        append_history(path, &HistoryRecord::from_summary(&s, "summary"))?;
        println!("wrote {} (RunSummary JSON)", path.display());
    }
    Ok(())
}

/// `mlcc-repro explain <experiment|TRACE.jsonl> [run options]`
///
/// Runs the experiment with telemetry forced on (or replays a recorded
/// JSONL trace) and prints the causal-attribution report: per-job blame
/// tables, top contended links, the conservation check, and the verdict
/// against the geometry prediction. Ok(true) when every scenario's blame
/// components sum to the measured iteration times within 1%.
fn cmd_explain(args: &[String]) -> Result<bool, String> {
    let [target, rest @ ..] = args else {
        return Err("explain needs an experiment name or a JSONL trace file".to_string());
    };
    if target.starts_with("--") {
        return Err("explain needs its target (experiment or trace) first".to_string());
    }
    let target = target.clone();
    let opts = parse_opts(rest)?;
    if let Some(n) = opts.jobs {
        mlcc::parallel::set_jobs(n);
    }
    if let Some(n) = opts.shards {
        mlcc::parallel::set_shards(n);
    }

    let mut predicted: std::collections::BTreeMap<String, f64> = Default::default();
    let events: Vec<telemetry::TimedEvent>;
    let name: String;
    if target.ends_with(".jsonl") {
        let path = PathBuf::from(&target);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        events = telemetry::parse_jsonl(&text).map_err(|e| e.to_string())?;
        name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_string());
    } else {
        let mut rec = TapRecorder::new(BufferRecorder::new());
        explain_run(&target, &opts, &mut rec, &mut predicted)?;
        events = rec.into_inner().events().to_vec();
        name = target.clone();
    }

    let cfg = AnalysisConfig {
        predicted_overlap: predicted,
        ..AnalysisConfig::default()
    };
    let analysis = diagnostics::analyze(&name, &events, &cfg);
    print_explain(&analysis)
}

/// Runs one experiment for `explain`, with the recorder forced on.
/// Fills `predicted` with the geometry solver's promised overlap per
/// scenario where the experiment has one.
fn explain_run(
    target: &str,
    o: &Opts,
    rec: &mut CliRecorder,
    predicted: &mut std::collections::BTreeMap<String, f64>,
) -> Result<(), String> {
    match target {
        "fig1" => {
            let cfg = exp::fig1::Fig1Config {
                iterations: o.iterations.unwrap_or(100),
                chaos: o.chaos,
                ..Default::default()
            };
            exp::fig1::run_traced(&cfg, &mut *rec);
            let p = exp::fig1::predicted_overlap(&cfg);
            predicted.insert("fig1/fair".to_string(), p);
            predicted.insert("fig1/unfair".to_string(), p);
        }
        "fig2" => {
            let cfg = exp::fig2::Fig2Config {
                iterations: o.iterations.unwrap_or(6),
                ..Default::default()
            };
            exp::fig2::run_traced(&cfg, &mut *rec);
        }
        "table1" => {
            let cfg = exp::table1::Table1Config {
                iterations: o.iterations.unwrap_or(30),
                chaos: o.chaos,
                ..Default::default()
            };
            exp::table1::run_traced(&cfg, &mut *rec);
        }
        "adaptive" => {
            let cfg = exp::adaptive::AdaptiveConfig {
                iterations: o.iterations.unwrap_or(24),
                ..Default::default()
            };
            exp::adaptive::run_traced(&cfg, &mut *rec);
        }
        "priority" => {
            let cfg = exp::priority::PriorityConfig {
                iterations: o.iterations.unwrap_or(20),
                ..Default::default()
            };
            exp::priority::run_traced(&cfg, &mut *rec);
        }
        "flowsched" => {
            let cfg = exp::flowsched::FlowschedConfig {
                iterations: o.iterations.unwrap_or(20),
                ..Default::default()
            };
            exp::flowsched::run_traced(&cfg, &mut *rec);
        }
        "pipelining" => {
            let cfg = exp::pipelining::PipeliningConfig {
                iterations: o.iterations.unwrap_or(16),
                ..Default::default()
            };
            exp::pipelining::run_traced(&cfg, &mut *rec);
        }
        "cluster" => {
            let cfg = exp::cluster::ClusterConfig {
                iterations: o.iterations.unwrap_or(16),
                ..Default::default()
            };
            exp::cluster::try_run_traced(&cfg, &mut *rec).map_err(|e| e.to_string())?;
        }
        "chaos" => {
            let cfg = exp::chaos::ChaosSweepConfig {
                iterations: o.iterations.unwrap_or(40),
                ..Default::default()
            };
            exp::chaos::run_traced(&cfg, &mut *rec);
        }
        other => {
            return Err(format!(
                "explain supports fig1|fig2|table1|adaptive|priority|flowsched|pipelining|\
                 cluster|chaos or a .jsonl trace, not {other:?}"
            ))
        }
    }
    Ok(())
}

/// Conservation tolerance: blame components must sum to the measured
/// iteration time within this relative error.
const EXPLAIN_RESIDUAL_TOL: f64 = 0.01;

/// Prints the attribution report; Ok(true) when conservation holds in
/// every scenario that produced a ledger.
fn print_explain(analysis: &diagnostics::RunAnalysis) -> Result<bool, String> {
    use mlcc::metrics::text_table;
    println!("== explain: {} ==", analysis.name);
    let mut all_conserved = true;
    let mut any_ledger = false;
    for sc in &analysis.scenarios {
        let ledger = &sc.ledger;
        println!();
        println!("scenario {}", sc.name);
        if ledger.jobs.is_empty() {
            println!("  no iteration spans in this scenario (trace predates typed spans?)");
            continue;
        }
        any_ledger = true;
        let mut rows = vec![vec![
            "job".to_string(),
            "wall ms".to_string(),
            "compute ms".to_string(),
            "wait ms".to_string(),
            "solo ms".to_string(),
            "inflation ms".to_string(),
            "inflation %".to_string(),
            "critical path".to_string(),
        ]];
        for (job, jl) in &ledger.jobs {
            let critical = if jl.bound_by_comm > jl.bound_by_compute {
                let link = jl
                    .top_blame()
                    .first()
                    .map(|((link, _), _)| format!("link{link}"))
                    .unwrap_or_else(|| "network".to_string());
                format!("{link} ({}/{})", jl.bound_by_comm, jl.iterations.len())
            } else {
                format!("compute ({}/{})", jl.bound_by_compute, jl.iterations.len())
            };
            rows.push(vec![
                format!("job{job}"),
                format!("{:.3}", jl.wall * 1e3),
                format!("{:.3}", jl.compute * 1e3),
                format!("{:.3}", jl.wait * 1e3),
                format!("{:.3}", jl.solo * 1e3),
                format!("{:.3}", jl.inflation * 1e3),
                format!("{:.1}", jl.inflation_share() * 100.0),
                critical,
            ]);
        }
        for line in text_table(&rows).lines() {
            println!("  {line}");
        }
        let blames: Vec<String> = ledger
            .jobs
            .iter()
            .flat_map(|(job, jl)| {
                jl.top_blame()
                    .into_iter()
                    .map(move |((link, other), secs)| {
                        format!(
                            "  job{job} <- job{other} on link{link}: {:.3} ms",
                            secs * 1e3
                        )
                    })
            })
            .collect();
        if blames.is_empty() {
            println!("  blame ledger: empty (no contention observed)");
        } else {
            println!("  blame ledger:");
            for b in &blames {
                println!("  {b}");
            }
            println!("  top contended links:");
            for lb in ledger.top_links() {
                println!(
                    "    link{}: {:.3} ms total inflation",
                    lb.link,
                    lb.inflation * 1e3
                );
            }
        }
        let residual = ledger.worst_relative_residual();
        let conserved = residual <= EXPLAIN_RESIDUAL_TOL;
        all_conserved &= conserved;
        println!(
            "  conservation: worst relative residual {:.4}% ({}, tolerance {:.1}%)",
            residual * 100.0,
            if conserved { "PASS" } else { "FAIL" },
            EXPLAIN_RESIDUAL_TOL * 100.0
        );
        match ledger.predicted_overlap {
            Some(p) => println!(
                "  geometry: measured overlap {:.3} vs predicted {:.3} -> {}",
                ledger.measured_overlap(),
                p,
                ledger.verdict()
            ),
            None => println!(
                "  geometry: measured overlap {:.3} (no prediction available)",
                ledger.measured_overlap()
            ),
        }
    }
    if !any_ledger {
        println!();
        println!("no attribution possible: the trace carries no span events");
    }
    Ok(all_conserved)
}

/// Event-stream diff: compares two JSONL traces line by line and reports
/// the first divergent event — its sequence number and both payloads.
/// Ok(true) when the streams are byte-identical.
fn diff_jsonl(a_path: &Path, b_path: &Path) -> Result<bool, String> {
    let read = |p: &Path| -> Result<String, String> {
        std::fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))
    };
    let a = read(a_path)?;
    let b = read(b_path)?;
    let a_lines: Vec<&str> = a.lines().collect();
    let b_lines: Vec<&str> = b.lines().collect();
    // The exporter writes dense positional sequence numbers, so the line
    // index IS the seq; prefer the line's own "seq" field when it parses
    // (a mangled export may disagree, and that disagreement is the news).
    let seq_of = |line: &str, index: usize| -> u64 {
        telemetry::replay::parse_flat_object(line)
            .ok()
            .and_then(|map| map.get("seq").and_then(|v| v.as_u64()))
            .unwrap_or(index as u64)
    };
    for (i, (la, lb)) in a_lines.iter().zip(b_lines.iter()).enumerate() {
        if la != lb {
            println!("DIFF at event seq {}:", seq_of(la, i));
            println!("  {}: {la}", a_path.display());
            println!("  {}: {lb}", b_path.display());
            return Ok(false);
        }
    }
    if a_lines.len() != b_lines.len() {
        let (longer, shorter, extra) = if a_lines.len() > b_lines.len() {
            (a_path, b_path, &a_lines[b_lines.len()..])
        } else {
            (b_path, a_path, &b_lines[a_lines.len()..])
        };
        println!(
            "DIFF at event seq {}: {} ends ({} events), {} continues ({} more)",
            seq_of(extra[0], a_lines.len().min(b_lines.len())),
            shorter.display(),
            a_lines.len().min(b_lines.len()),
            longer.display(),
            extra.len()
        );
        println!("  first extra: {}", extra[0]);
        return Ok(false);
    }
    println!("identical: {} events", a_lines.len());
    Ok(true)
}

/// `mlcc-repro diff A.json B.json [--tolerance F]` — Ok(true) when clean.
/// Two `.jsonl` arguments select the event-stream diff instead.
fn cmd_diff(args: &[String]) -> Result<bool, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                cfg.rel_tol = v.parse().map_err(|_| format!("bad tolerance {v}"))?;
            }
            other if !other.starts_with("--") => files.push(PathBuf::from(other)),
            other => return Err(format!("unknown option {other}")),
        }
    }
    let [a_path, b_path] = files.as_slice() else {
        return Err("diff needs exactly two RunSummary JSON files".to_string());
    };
    let is_jsonl = |p: &PathBuf| p.extension().is_some_and(|e| e == "jsonl");
    if is_jsonl(a_path) && is_jsonl(b_path) {
        return diff_jsonl(a_path, b_path);
    }
    let load = |p: &PathBuf| -> Result<RunSummary, String> {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
        RunSummary::from_json(&text).map_err(|e| format!("parsing {}: {e}", p.display()))
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    let report = diagnostics::diff(&a, &b, &cfg);
    if report.is_clean() {
        println!(
            "clean: {} metrics within {:.1}% tolerance",
            report.compared,
            cfg.rel_tol * 100.0
        );
        Ok(true)
    } else {
        println!(
            "DIFF: {} shifted, {} only in {}, {} only in {} (of {} compared):",
            report.shifted.len(),
            report.only_in_a.len(),
            a_path.display(),
            report.only_in_b.len(),
            b_path.display(),
            report.compared
        );
        print!("{}", report.render());
        Ok(false)
    }
}

/// `mlcc-repro trend [HISTORY.jsonl] [--last K] [--tolerance F]
/// [--wall-tolerance F] [--experiment NAME]` — Ok(true) when clean.
fn cmd_trend(args: &[String]) -> Result<bool, String> {
    let mut path = PathBuf::from("bench/HISTORY.jsonl");
    let mut cfg = TrendConfig::default();
    let mut experiment: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--last" => {
                let v = it.next().ok_or("--last needs a value")?;
                cfg.last = v.parse().map_err(|_| format!("bad record count {v}"))?;
                if cfg.last < 2 {
                    return Err("--last must be at least 2".to_string());
                }
            }
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                cfg.rel_tol = v.parse().map_err(|_| format!("bad tolerance {v}"))?;
            }
            "--wall-tolerance" => {
                let v = it.next().ok_or("--wall-tolerance needs a value")?;
                cfg.wall_rel_tol = v.parse().map_err(|_| format!("bad tolerance {v}"))?;
            }
            "--experiment" => {
                experiment = Some(it.next().ok_or("--experiment needs a name")?.clone())
            }
            other if !other.starts_with("--") => path = PathBuf::from(other),
            other => return Err(format!("unknown option {other}")),
        }
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut records =
        history::parse_history(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if let Some(exp) = &experiment {
        records.retain(|r| &r.experiment == exp);
        if records.is_empty() {
            return Err(format!(
                "{}: no records for experiment {exp:?}",
                path.display()
            ));
        }
    }
    if records.is_empty() {
        return Err(format!("{}: no records", path.display()));
    }
    let report = history::trend(&records, &cfg);
    print!("{}", report.render());
    if report.is_clean() {
        println!("trend clean");
        Ok(true)
    } else {
        println!("TREND: regression(s) beyond tolerance");
        Ok(false)
    }
}

/// What the watcher thread hands back once the live channel drains: the
/// flight-recorder state and every alert the watchdog fired.
struct WatchOutcome {
    handle: LiveHandle,
    alerts: Vec<Alert>,
}

/// Spawns the observer thread: drains live batches, feeds the watchdog,
/// and (in `--watch` mode) prints periodic progress lines to stderr.
/// Returns when every tap sender is gone and the channel is exhausted.
fn spawn_watcher(
    mut handle: LiveHandle,
    mut bank: Option<WatchdogBank>,
    watch: bool,
) -> std::thread::JoinHandle<WatchOutcome> {
    std::thread::Builder::new()
        .name("mlcc-watch".to_string())
        .spawn(move || {
            let mut last_line = Instant::now();
            let started = Instant::now();
            loop {
                let (batches, done) = handle.poll_timeout(Duration::from_millis(50));
                if let Some(bank) = bank.as_mut() {
                    for (scenario, events) in &batches {
                        for te in events {
                            bank.observe(scenario, te);
                        }
                    }
                }
                if watch && (done || last_line.elapsed() >= Duration::from_millis(200)) {
                    last_line = Instant::now();
                    let furthest = handle
                        .progress()
                        .iter()
                        .max_by(|(_, a), (_, b)| a.last_at.cmp(&b.last_at))
                        .map(|(name, p)| {
                            format!(" · furthest {name} @ {:.1}ms", p.last_at.as_millis_f64())
                        })
                        .unwrap_or_default();
                    let alerts = match bank.as_ref().map(|b| b.alert_count()) {
                        Some(n) => format!(" · {n} alert(s)"),
                        None => String::new(),
                    };
                    eprintln!(
                        "[watch {:5.1}s] {} events · {} scenarios{furthest}{alerts}",
                        started.elapsed().as_secs_f64(),
                        handle.total_events(),
                        handle.progress().len(),
                    );
                }
                if done {
                    break;
                }
            }
            let alerts = bank.map(WatchdogBank::into_alerts).unwrap_or_default();
            WatchOutcome { handle, alerts }
        })
        .expect("spawn watcher thread")
}

/// Finalizes the live side of a run: writes `--flight` / `--alerts`
/// dumps, renders alerts to stderr, and says whether an SLO was breached.
fn finish_live(opts: &Opts, outcome: &WatchOutcome) -> Result<bool, String> {
    for alert in &outcome.alerts {
        eprintln!("ALERT {}", alert.render());
    }
    if opts.watch {
        eprintln!(
            "[watch] done: {} events across {} scenarios, {} alert(s)",
            outcome.handle.total_events(),
            outcome.handle.progress().len(),
            outcome.alerts.len()
        );
    }
    if let Some(path) = &opts.flight {
        write_file(path, &outcome.handle.snapshot_jsonl())?;
        eprintln!(
            "wrote {} (flight-recorder snapshot, {} events)",
            path.display(),
            outcome.handle.snapshot().len()
        );
    }
    if let Some(path) = &opts.alerts {
        let mut content = String::new();
        for alert in &outcome.alerts {
            content.push_str(&alert.to_jsonl());
        }
        write_file(path, &content)?;
        eprintln!(
            "wrote {} ({} alert(s) with flight-recorder context)",
            path.display(),
            outcome.alerts.len()
        );
    }
    Ok(opts.slo.is_some() && !outcome.alerts.is_empty())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mlcc-repro <fig1|fig2|table1|variants|geometry|adaptive|priority|flowsched|cluster|\
         pipelining|chaos|snapshot|shard|all> [--iterations N] [--jobs N] [--shards N]\n\
         \x20      [--csv DIR] [--trace FILE]\n\
         \x20      [--metrics] [--profile] [--report FILE] [--summary FILE] [--summary-dir DIR]\n\
         \x20      [--chaos PROFILE|FILE.toml] [--chaos-seed N]\n\
         \x20      [--fork-at DUR] [--fork-replay]\n\
         \x20      [--watch] [--slo RULES.toml] [--alerts FILE] [--flight FILE]\n\
         \x20      mlcc-repro report TRACE.jsonl [--out FILE] [--summary FILE] [--name NAME]\n\
         \x20      mlcc-repro diff A.json B.json [--tolerance F] | diff A.jsonl B.jsonl\n\
         \x20      mlcc-repro trend [HISTORY.jsonl] [--last K] [--tolerance F]\n\
         \x20      [--wall-tolerance F] [--experiment NAME]\n\
         \x20      mlcc-repro explain <EXPERIMENT|TRACE.jsonl> [run options]\n\
         exit codes: 0 success, 1 failure (incl. diff/trend/explain findings), 4 SLO breach"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    // Analysis subcommands take their own arguments.
    match cmd.as_str() {
        "report" => {
            return match cmd_report(rest) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "diff" => {
            return match cmd_diff(rest) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "trend" => {
            return match cmd_trend(rest) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "explain" => {
            return match cmd_explain(rest) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => {
                    eprintln!("explain: conservation check FAILED");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        _ => {}
    }
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if let Some(n) = opts.jobs {
        mlcc::parallel::set_jobs(n);
    }
    if let Some(n) = opts.shards {
        mlcc::parallel::set_shards(n);
    }
    // The live sink must be installed before the recorder is created (and
    // before any worker forks), so every tap picks it up.
    let watcher = if opts.live_enabled() {
        let handle = live::install(LiveConfig::default());
        let bank = opts.slo.clone().map(WatchdogBank::new);
        Some(spawn_watcher(handle, bank, opts.watch))
    } else {
        None
    };
    let mut rec = opts.recorder();
    // Runs one experiment, timing it and writing its bench summary.
    let mut bench_err: Option<String> = None;
    {
        let mut run =
            |name: &str,
             rec: &mut Option<CliRecorder>,
             f: &dyn Fn(&Opts, Option<&mut CliRecorder>) -> BenchMetrics| {
                let start = Instant::now();
                let mut metrics = f(&opts, rec.as_mut());
                if let Some(dir) = &opts.summary_dir {
                    metrics.push(("parallel.jobs".to_string(), mlcc::parallel::jobs() as f64));
                    if let Err(e) = write_bench(dir, name, start.elapsed(), &metrics) {
                        bench_err.get_or_insert(e);
                    }
                }
            };
        match cmd.as_str() {
            "fig1" => run("fig1", &mut rec, &run_fig1),
            "fig2" => run("fig2", &mut rec, &run_fig2),
            "table1" => run("table1", &mut rec, &run_table1),
            "variants" => run("variants", &mut rec, &run_variants),
            "geometry" => run("geometry", &mut rec, &|o, _| run_geometry(o)),
            "adaptive" => run("adaptive", &mut rec, &run_adaptive),
            "priority" => run("priority", &mut rec, &run_priority),
            "flowsched" => run("flowsched", &mut rec, &run_flowsched),
            "cluster" => run("cluster", &mut rec, &run_cluster),
            "pipelining" => run("pipelining", &mut rec, &run_pipelining),
            "chaos" => run("chaos", &mut rec, &run_chaos),
            "snapshot" => run("snapshot", &mut rec, &|o, _| run_snapshot_bench(o)),
            "shard" => run("shard", &mut rec, &run_shard_bench),
            "all" => {
                run("fig1", &mut rec, &run_fig1);
                run("fig2", &mut rec, &run_fig2);
                run("table1", &mut rec, &run_table1);
                run("geometry", &mut rec, &|o, _| run_geometry(o));
                run("adaptive", &mut rec, &run_adaptive);
                run("priority", &mut rec, &run_priority);
                run("flowsched", &mut rec, &run_flowsched);
                run("cluster", &mut rec, &run_cluster);
                run("pipelining", &mut rec, &run_pipelining);
            }
            _ => return usage(),
        }
    }
    // Unwrap the tap (flushing its final batch), tear down the global
    // sink so the channel disconnects, then collect the watcher's
    // verdict. Order matters: the watcher only exits once every sender —
    // the tap's and the global registration's — is gone.
    let rec: Option<BufferRecorder> = rec.map(TapRecorder::into_inner);
    let outcome = match watcher {
        Some(w) => {
            live::uninstall();
            match w.join() {
                Ok(outcome) => Some(outcome),
                Err(_) => {
                    eprintln!("error: watcher thread panicked");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    if let Some(e) = bench_err {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(rec) = &rec {
        if let Err(e) = report(cmd, &opts, rec) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(outcome) = &outcome {
        match finish_live(&opts, outcome) {
            Ok(false) => {}
            Ok(true) => {
                eprintln!(
                    "SLO breach: {} alert(s); exiting with code 4",
                    outcome.alerts.len()
                );
                return ExitCode::from(4);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
