//! `mlcc-repro` — command-line driver for every reproduction experiment.
//!
//! ```text
//! mlcc-repro <command> [--iterations N] [--csv DIR] [--trace FILE]
//!                      [--metrics] [--profile]
//!
//! commands:
//!   fig1       Fig. 1: bandwidth shares + iteration-time CDFs
//!   fig2       Fig. 2: the sliding effect
//!   table1     Table 1: five job groups, measured + predicted
//!   geometry   Figs. 3–5: circles, rotations, unified circle
//!   adaptive   §4.i  adaptively unfair congestion control
//!   priority   §4.ii switch priority queues
//!   flowsched  §4.iii flow scheduling from rotation angles
//!   cluster    §5    compatibility-aware placement
//!   pipelining extension: bucketized emission widens compatibility
//!   all        everything above, in order
//! ```
//!
//! `--csv DIR` additionally writes the raw data series (traces, CDFs,
//! tables) as CSV files for plotting.
//!
//! `--trace FILE` records the run's telemetry events (ECN marks, CNPs,
//! rate changes, phase transitions, solver passes) to `FILE`: a `.jsonl`
//! extension selects line-delimited JSON, anything else a Chrome trace
//! viewable in Perfetto / `chrome://tracing`. `--metrics` prints the
//! aggregated metrics table; `--profile` prints the per-engine wall-clock
//! breakdown. All three imply event recording.

use mlcc::experiments as exp;
use mlcc::export;
use std::path::PathBuf;
use std::process::ExitCode;
use telemetry::{BufferRecorder, Profiler};

struct Opts {
    iterations: Option<usize>,
    csv: Option<PathBuf>,
    trace: Option<PathBuf>,
    metrics: bool,
    profile: bool,
}

impl Opts {
    /// A recorder when any observability flag asked for one.
    fn recorder(&self) -> Option<BufferRecorder> {
        (self.trace.is_some() || self.metrics || self.profile).then(BufferRecorder::new)
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        iterations: None,
        csv: None,
        trace: None,
        metrics: false,
        profile: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iterations" => {
                let v = it.next().ok_or("--iterations needs a value")?;
                opts.iterations = Some(v.parse().map_err(|_| format!("bad iteration count {v}"))?);
            }
            "--csv" => {
                let v = it.next().ok_or("--csv needs a directory")?;
                opts.csv = Some(PathBuf::from(v));
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a file path")?;
                opts.trace = Some(PathBuf::from(v));
            }
            "--metrics" => opts.metrics = true,
            "--profile" => opts.profile = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

/// Writes the trace file and prints the metrics / profiler reports the
/// flags asked for. Returns an error message on I/O failure.
fn report(opts: &Opts, rec: &BufferRecorder) -> Result<(), String> {
    if let Some(path) = &opts.trace {
        let jsonl = path.extension().is_some_and(|e| e == "jsonl");
        let content = if jsonl {
            telemetry::export::jsonl(rec.events())
        } else {
            telemetry::export::chrome_trace(rec.events())
        };
        std::fs::write(path, content)
            .map_err(|e| format!("writing trace {}: {e}", path.display()))?;
        println!(
            "wrote {} ({} events, {})",
            path.display(),
            rec.len(),
            if jsonl {
                "JSONL"
            } else {
                "Chrome trace — open in Perfetto or chrome://tracing"
            }
        );
    }
    if opts.metrics {
        println!("== metrics ==");
        println!("{}", rec.metrics().render());
    }
    if opts.profile {
        let mut prof = Profiler::new();
        prof.absorb(rec);
        println!("== profile ==");
        println!("{}", prof.render());
    }
    Ok(())
}

fn run_fig1(o: &Opts, rec: Option<&mut BufferRecorder>) {
    let cfg = exp::fig1::Fig1Config {
        iterations: o.iterations.unwrap_or(100),
        ..Default::default()
    };
    println!("== Fig. 1 ({} iterations) ==", cfg.iterations);
    let r = match rec {
        Some(rec) => exp::fig1::run_traced(&cfg, rec),
        None => exp::fig1::run(&cfg),
    };
    println!("{}", r.render());
    if let Some(dir) = &o.csv {
        for (name, sc) in [("fair", &r.fair), ("unfair", &r.unfair)] {
            for (i, s) in sc.stats.iter().enumerate() {
                let p = export::write_csv(
                    dir,
                    &format!("fig1d_{name}_j{i}.csv"),
                    &export::cdf_csv(&s.cdf),
                )
                .expect("write CSV");
                println!("wrote {}", p.display());
            }
            let p = export::write_csv(
                dir,
                &format!("fig1bc_{name}_rates.csv"),
                &export::multi_series_csv(&[&sc.traces[0], &sc.traces[1]], &["j1_gbps", "j2_gbps"]),
            )
            .expect("write CSV");
            println!("wrote {}", p.display());
        }
    }
}

fn run_fig2(o: &Opts, rec: Option<&mut BufferRecorder>) {
    let cfg = exp::fig2::Fig2Config {
        iterations: o.iterations.unwrap_or(6),
        ..Default::default()
    };
    println!("== Fig. 2 ({} iterations) ==", cfg.iterations);
    let r = match rec {
        Some(rec) => exp::fig2::run_traced(&cfg, rec),
        None => exp::fig2::run(&cfg),
    };
    println!("{}", r.render());
    if let Some(dir) = &o.csv {
        for (name, sc) in [("fair", &r.fair), ("unfair", &r.unfair)] {
            let p = export::write_csv(
                dir,
                &format!("fig2_{name}_rates.csv"),
                &export::multi_series_csv(&[&sc.traces[0], &sc.traces[1]], &["j1_gbps", "j2_gbps"]),
            )
            .expect("write CSV");
            println!("wrote {}", p.display());
        }
    }
}

fn run_table1(o: &Opts, rec: Option<&mut BufferRecorder>) {
    let cfg = exp::table1::Table1Config {
        iterations: o.iterations.unwrap_or(30),
        ..Default::default()
    };
    println!("== Table 1 ({} iterations per scenario) ==", cfg.iterations);
    let r = match rec {
        Some(rec) => exp::table1::run_traced(&cfg, rec),
        None => exp::table1::run(&cfg),
    };
    println!("{}", r.render());
    if let Some(dir) = &o.csv {
        let mut rows = vec![vec![
            "job".to_string(),
            "fair_ms".to_string(),
            "unfair_ms".to_string(),
            "speedup".to_string(),
            "group_compatible".to_string(),
        ]];
        for g in &r.groups {
            for row in &g.rows {
                rows.push(vec![
                    row.label.clone(),
                    format!("{:.1}", row.fair.as_millis_f64()),
                    format!("{:.1}", row.unfair.as_millis_f64()),
                    format!("{:.3}", row.speedup.0),
                    g.fully_compatible_measured.to_string(),
                ]);
            }
        }
        let p = export::write_csv(dir, "table1.csv", &export::rows_csv(&rows)).expect("write CSV");
        println!("wrote {}", p.display());
    }
}

fn run_geometry(_o: &Opts) {
    println!("== Figs. 3–5 ==");
    let f3 = exp::geometry_demo::fig3(6);
    println!(
        "Fig. 3: VGG16 circle perimeter {} (comm {}), arcs stable: {}",
        f3.profile.period(),
        f3.profile.comm_time(),
        f3.per_iteration_checks.iter().all(|&(c, m)| !c && m)
    );
    let f4 = exp::geometry_demo::fig4();
    println!(
        "Fig. 4: {} ms overlap at rotation zero; solver: {}",
        f4.overlap_at_zero_ms,
        if f4.verdict.is_compatible() {
            "compatible"
        } else {
            "incompatible"
        }
    );
    let f5 = exp::geometry_demo::fig5();
    println!(
        "Fig. 5: unified circle {}, reps {:?}, J2 rotation {:.1}°",
        f5.perimeter,
        f5.repetitions,
        f5.verdict.rotations().expect("compatible")[1].degrees
    );
}

fn run_adaptive(o: &Opts, rec: Option<&mut BufferRecorder>) {
    let cfg = exp::adaptive::AdaptiveConfig {
        iterations: o.iterations.unwrap_or(24),
        ..Default::default()
    };
    println!("== §4.i adaptive unfairness ==");
    let r = match rec {
        Some(rec) => exp::adaptive::run_traced(&cfg, rec),
        None => exp::adaptive::run(&cfg),
    };
    println!("{}", r.render());
}

fn run_priority(o: &Opts, rec: Option<&mut BufferRecorder>) {
    let cfg = exp::priority::PriorityConfig {
        iterations: o.iterations.unwrap_or(20),
        ..Default::default()
    };
    println!("== §4.ii priority queues ==");
    let r = match rec {
        Some(rec) => exp::priority::run_traced(&cfg, rec),
        None => exp::priority::run(&cfg),
    };
    println!("{}", r.render());
}

fn run_flowsched(o: &Opts, rec: Option<&mut BufferRecorder>) {
    let cfg = exp::flowsched::FlowschedConfig {
        iterations: o.iterations.unwrap_or(20),
        ..Default::default()
    };
    println!("== §4.iii flow scheduling ==");
    let r = match rec {
        Some(rec) => exp::flowsched::run_traced(&cfg, rec),
        None => exp::flowsched::run(&cfg),
    };
    println!("{}", r.render());
}

fn run_pipelining(o: &Opts, rec: Option<&mut BufferRecorder>) {
    let cfg = exp::pipelining::PipeliningConfig {
        iterations: o.iterations.unwrap_or(16),
        ..Default::default()
    };
    println!("== pipelining extension ==");
    let r = match rec {
        Some(rec) => exp::pipelining::run_traced(&cfg, rec),
        None => exp::pipelining::run(&cfg),
    };
    println!("{}", r.render());
}

fn run_cluster(o: &Opts, rec: Option<&mut BufferRecorder>) {
    let cfg = exp::cluster::ClusterConfig {
        iterations: o.iterations.unwrap_or(16),
        ..Default::default()
    };
    println!("== §5 cluster placement ==");
    let r = match rec {
        Some(rec) => exp::cluster::try_run_traced(&cfg, rec).unwrap_or_else(|e| panic!("{e}")),
        None => exp::cluster::run(&cfg),
    };
    println!("{}", r.render());
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mlcc-repro <fig1|fig2|table1|geometry|adaptive|priority|flowsched|cluster|\
         pipelining|all> [--iterations N] [--csv DIR] [--trace FILE] [--metrics] [--profile]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let mut rec = opts.recorder();
    match cmd.as_str() {
        "fig1" => run_fig1(&opts, rec.as_mut()),
        "fig2" => run_fig2(&opts, rec.as_mut()),
        "table1" => run_table1(&opts, rec.as_mut()),
        "geometry" => run_geometry(&opts),
        "adaptive" => run_adaptive(&opts, rec.as_mut()),
        "priority" => run_priority(&opts, rec.as_mut()),
        "flowsched" => run_flowsched(&opts, rec.as_mut()),
        "cluster" => run_cluster(&opts, rec.as_mut()),
        "pipelining" => run_pipelining(&opts, rec.as_mut()),
        "all" => {
            run_fig1(&opts, rec.as_mut());
            run_fig2(&opts, rec.as_mut());
            run_table1(&opts, rec.as_mut());
            run_geometry(&opts);
            run_adaptive(&opts, rec.as_mut());
            run_priority(&opts, rec.as_mut());
            run_flowsched(&opts, rec.as_mut());
            run_cluster(&opts, rec.as_mut());
            run_pipelining(&opts, rec.as_mut());
        }
        _ => return usage(),
    }
    if let Some(rec) = &rec {
        if let Err(e) = report(&opts, rec) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
