//! Offline stand-in for the `criterion` crate.
//!
//! The container has no network access, so the real criterion cannot be
//! downloaded. This stub keeps the workspace's benches compiling and useful:
//! it implements the builder/macro surface the benches use
//! (`bench_function`, `benchmark_group` + `bench_with_input`,
//! `criterion_group!`/`criterion_main!`, `black_box`) and reports mean/min
//! wall-clock per iteration to stdout. There is no statistical analysis,
//! outlier detection, or HTML report.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing harness handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    budget: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly — once to warm up, then until either
    /// `target_samples` timed runs complete or the time budget is spent —
    /// and records per-run wall clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let started = Instant::now();
        while self.samples.len() < self.target_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget && !self.samples.is_empty() {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<40} mean {:>12?}  min {:>12?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Top-level driver mirroring `criterion::Criterion`'s builder API.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
            budget: self.measurement_time,
        };
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Identifier for one benchmark inside a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        c.bench_function("stub/smoke", |b| b.iter(|| runs += 1));
        // one warmup + up to three timed runs
        assert!(runs >= 2);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
