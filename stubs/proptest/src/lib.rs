//! Offline stand-in for the `proptest` crate.
//!
//! The container has no network access and no vendored registry, so the real
//! proptest cannot be downloaded. This stub reimplements the small slice of
//! its API that the workspace's property tests use — `proptest!`,
//! `prop_assert*`, `Strategy` with `prop_map`, integer/float range
//! strategies, tuples, `collection::vec`, and `bool::ANY` — backed by a
//! deterministic splitmix64 sampler. There is no shrinking: a failing case
//! reports its inputs via the assertion message and the case index.
//!
//! Determinism: each test function derives its RNG seed from its own name,
//! so runs are reproducible and independent of execution order.

pub mod test_runner {
    use std::fmt;

    /// Subset of proptest's run configuration: only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // The real default is 256; 64 keeps offline CI fast while still
            // exercising the properties.
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!` family; carries only the message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// splitmix64: tiny, fast, good enough for test-input sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Seed derived from the test's name (FNV-1a) so every test gets a
        /// stable, distinct stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::new(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant for test sampling.
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for producing random values. Unlike the real proptest there
    /// is no value tree / shrinking: `sample` draws one concrete value.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategies are sampled through `&S` as well (parity with real
    /// proptest, where `&S: Strategy`).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// `Just`: always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)`: a `Vec` whose length is drawn from
    /// `len_range` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool` strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = std::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> std::primitive::bool {
            rng.bool()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]   // optional
///     #[test]
///     fn name(pat in strategy, pat in strategy) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($argp:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = ($cfg).cases;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cases {
                    $(let $argp = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assume!(cond)`: discard the current case when `cond` is false.
/// Unlike the real proptest there is no resampling — the case simply
/// passes vacuously, which is fine at the case counts used here.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, args...)`: on failure,
/// return a `TestCaseError` from the enclosing proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::sample(&(0.5f64..2.5), &mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::for_test("vec_lengths_respect_bounds");
        for _ in 0..200 {
            let v = Strategy::sample(&crate::collection::vec(0usize..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let s = (0u64..1000, 0.0f64..1.0);
        for _ in 0..50 {
            assert_eq!(
                Strategy::sample(&s, &mut a).0,
                Strategy::sample(&s, &mut b).0
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(x in 1u32..100, mut xs in crate::collection::vec(0usize..9, 0..4)) {
            xs.sort_unstable();
            prop_assert!(x >= 1);
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
