//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this environment, and the only workspace
//! reference to serde is `simtime`'s optional `serde` feature, which no crate
//! enables. This stub exists purely so dependency resolution succeeds. The
//! `derive` feature is accepted but provides no macros; enabling `simtime`'s
//! `serde` feature therefore will not compile until a real serde is restored.

/// Marker trait mirroring `serde::Serialize`'s name.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}
