//! Property-based tests on the diagnostics analyzers' invariants, driven
//! through the public API of the `diagnostics` crate.

use diagnostics::{audit, extract_tracks, jain_index};
use geometry::{overlap_fraction_of, solve, Profile, SolverConfig};
use mlcc_repro::*;
use proptest::prelude::*;
use simtime::{Dur, Time};
use telemetry::{Event, Phase, TimedEvent};

fn comm_event(at: u64, job: u32, iteration: u64, enter: bool) -> TimedEvent {
    TimedEvent {
        at: Time::from_nanos(at),
        event: if enter {
            Event::PhaseEnter {
                job,
                phase: Phase::Communicate,
                iteration,
            }
        } else {
            Event::PhaseExit {
                job,
                phase: Phase::Communicate,
                iteration,
            }
        },
    }
}

/// Strategy: positive per-flow rates (the domain Jain is defined on).
fn rates_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.1f64..100.0, 1..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Jain's index lies in (0, 1] for any non-empty positive allocation.
    #[test]
    fn jain_index_is_bounded(rates in rates_strategy()) {
        let j = jain_index(&rates);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "jain {j} for {rates:?}");
    }

    /// Identical rates are perfectly fair: Jain == 1 regardless of the
    /// common value or the flow count.
    #[test]
    fn jain_index_of_identical_rates_is_one(
        rate in 0.1f64..100.0,
        n in 1usize..32,
    ) {
        let j = jain_index(&vec![rate; n]);
        prop_assert!((j - 1.0).abs() < 1e-12, "jain {j}");
    }

    /// Jain's index is permutation-invariant: rotating or reversing the
    /// allocation vector never changes the verdict.
    #[test]
    fn jain_index_is_permutation_invariant(
        rates in rates_strategy(),
        rot in 0usize..16,
    ) {
        let j = jain_index(&rates);
        let mut rotated = rates.clone();
        rotated.rotate_left(rot % rates.len());
        prop_assert!((jain_index(&rotated) - j).abs() < 1e-12);
        let mut reversed = rates;
        reversed.reverse();
        prop_assert!((jain_index(&reversed) - j).abs() < 1e-12);
    }

    /// The interleaving auditor's overlap fraction is a fraction: in
    /// [0, 1] for arbitrary (even pathological) comm interval layouts.
    #[test]
    fn measured_overlap_fraction_is_bounded(
        spans in proptest::collection::vec((0u64..1_000, 1u64..500), 1..24),
    ) {
        let mut events = Vec::new();
        for (job, &(start, len)) in spans.iter().enumerate() {
            events.push(comm_event(start, job as u32, 0, true));
            events.push(comm_event(start + len, job as u32, 0, false));
        }
        events.sort_by_key(|e| e.at);
        let report = audit(&extract_tracks(&events), None);
        prop_assert!(
            (0.0..=1.0).contains(&report.overlap_fraction),
            "overlap {} for {spans:?}",
            report.overlap_fraction
        );
        for link in &report.links {
            prop_assert!((0.0..=1.0).contains(&link.overlap_fraction));
            for share in link.exclusive_share.values() {
                prop_assert!((0.0..=1.0).contains(share));
            }
        }
    }

    /// Perfectly rotated arcs — each job communicating in its own slot of
    /// a shared period — measure exactly zero overlap, every iteration.
    #[test]
    fn perfectly_rotated_arcs_measure_zero_overlap(
        n in 2usize..6,
        slot in 50u64..500,
        iterations in 1u64..8,
    ) {
        let period = n as u64 * slot;
        let mut events = Vec::new();
        for k in 0..iterations {
            for job in 0..n as u64 {
                let start = k * period + job * slot;
                events.push(comm_event(start, job as u32, k, true));
                events.push(comm_event(start + slot, job as u32, k, false));
            }
        }
        events.sort_by_key(|e| e.at);
        let report = audit(&extract_tracks(&events), None);
        prop_assert_eq!(report.overlap_fraction, 0.0);
        for link in &report.links {
            for (&job, &share) in &link.exclusive_share {
                prop_assert!(
                    (share - 1.0).abs() < 1e-12,
                    "job {} exclusive share {}",
                    job,
                    share
                );
            }
        }
    }

    /// The solver's own rotations always score zero predicted overlap
    /// under `overlap_fraction_of` — prediction agrees with the verdict.
    #[test]
    fn solver_rotations_predict_zero_overlap(
        period in 50u64..200,
        frac_a in 0.05f64..0.45,
        frac_b in 0.05f64..0.45,
    ) {
        let p = Dur::from_millis(period);
        let comm_a = p.mul_f64(frac_a).max(Dur::from_millis(1));
        let comm_b = p.mul_f64(frac_b).max(Dur::from_millis(1));
        let a = Profile::compute_then_comm(p - comm_a, comm_a);
        let b = Profile::compute_then_comm(p - comm_b, comm_b);
        let cfg = SolverConfig::default();
        let verdict = solve(&[a.clone(), b.clone()], &cfg).unwrap();
        if verdict.is_compatible() {
            let rots = verdict.rotations().unwrap();
            let predicted =
                overlap_fraction_of(&[a, b], rots, cfg.sectors).unwrap();
            prop_assert_eq!(predicted, 0.0);
        }
    }
}
