//! Causal-attribution acceptance and property tests.
//!
//! Property side: every engine's span stream is well-formed (strictly
//! nested per job, no orphan ends, round-trips through JSONL), and the
//! contention ledger conserves time — compute + solo + inflation + wait
//! equals the measured iteration wall time within 1% — on randomized job
//! mixes for both the rate and fluid engines. Mangled span streams must
//! be rejected by the replayer.
//!
//! Acceptance side (ISSUE 7): `explain`-style attribution of the Fig. 1
//! unfair scenario pins the inflation on the shared bottleneck link and
//! names the competing job, and the fair scenario inflates more than the
//! unfair one — the paper's headline, recovered from blame accounting
//! alone.

use dcqcn::CcVariant;
use diagnostics::{attribution, events};
use mlcc::experiments::fig1::{self, Fig1Config};
use mlcc_repro::*;
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator, SharingPolicy};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use proptest::prelude::*;
use simtime::{Bandwidth, Dur};
use telemetry::{export, parse_jsonl, BufferRecorder, Event, SpanKind, TimedEvent};
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

const LINE: Bandwidth = Bandwidth::from_gbps(50);
const RESIDUAL_TOL: f64 = 0.01;

fn spec_strategy() -> impl Strategy<Value = JobSpec> {
    (0usize..6, 1u32..4).prop_map(|(m, scale)| {
        let model = Model::ALL[m];
        let base = match model {
            Model::BertLarge => 8,
            Model::Dlrm => 600,
            _ => 500,
        };
        JobSpec::reference(model, base * scale)
    })
}

/// Checks strict per-job span nesting: begins push, ends match the
/// innermost open span of the same job, and phase spans sit inside an
/// iteration span. Dangling opens at stream end are fine.
fn assert_well_formed(events: &[TimedEvent]) {
    let mut stacks: std::collections::BTreeMap<u32, Vec<SpanKind>> = Default::default();
    let mut saw_span = false;
    for te in events {
        match &te.event {
            Event::SpanBegin { job, kind, .. } => {
                saw_span = true;
                let stack = stacks.entry(*job).or_default();
                match kind {
                    SpanKind::Iteration => {
                        assert!(stack.is_empty(), "job {job}: nested iteration span")
                    }
                    _ => assert_eq!(
                        stack.first(),
                        Some(&SpanKind::Iteration),
                        "job {job}: phase span outside an iteration"
                    ),
                }
                stack.push(*kind);
            }
            Event::SpanEnd { job, kind, .. } => {
                let stack = stacks.entry(*job).or_default();
                assert_eq!(stack.pop().as_ref(), Some(kind), "job {job}: orphan end");
            }
            _ => {}
        }
    }
    assert!(saw_span, "engine emitted no span events");
}

/// Conservation: the ledger's components sum to the measured iteration
/// time within `RESIDUAL_TOL`, and every link's inflation equals the
/// blame assigned to pairs on it.
fn assert_conserved(ledger: &attribution::ContentionLedger) {
    assert!(!ledger.jobs.is_empty(), "no iterations attributed");
    let worst = ledger.worst_relative_residual();
    assert!(
        worst <= RESIDUAL_TOL,
        "conservation violated: worst relative residual {worst:.4}"
    );
    for lb in ledger.links.values() {
        let paired: f64 = lb.pairs.values().sum();
        assert!(
            (paired - lb.inflation).abs() <= 1e-9 + lb.inflation * 1e-9,
            "link {}: pair blame {paired} != inflation {}",
            lb.link,
            lb.inflation
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Rate engine: spans well-formed, JSONL round-trip exact, ledger
    /// conserves time on arbitrary two-job mixes.
    #[test]
    fn rate_engine_spans_and_ledger_conserve(
        a in spec_strategy(),
        b in spec_strategy(),
        aggressive in proptest::bool::ANY,
    ) {
        let variant = if aggressive {
            CcVariant::StaticUnfair { timer: Dur::from_micros(100) }
        } else {
            CcVariant::Fair
        };
        let jobs = [RateJob::new(a, variant), RateJob::new(b, CcVariant::Fair)];
        let mut rec = BufferRecorder::new();
        {
            let mut sim =
                RateSimulator::with_recorder(RateSimConfig::default(), &jobs, &mut rec);
            let per = a.iteration_time_at(LINE).max(b.iteration_time_at(LINE));
            prop_assert!(sim.run_until_iterations(4, per * 40));
        }

        assert_well_formed(rec.events());
        let round = parse_jsonl(&export::jsonl(rec.events())).expect("round-trip parses");
        prop_assert_eq!(round.as_slice(), rec.events());

        let tracks = events::extract_tracks(rec.events());
        assert_conserved(&attribution::ledger(&tracks, None));
    }

    /// Fluid engine: same invariants, on an explicit topology where the
    /// two jobs share the dumbbell spine.
    #[test]
    fn fluid_engine_spans_and_ledger_conserve(
        a in spec_strategy(),
        b in spec_strategy(),
        policy_pick in 0u8..3,
    ) {
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = d.topology.clone();
        let path = |i: usize| {
            t.route(topology::FlowKey {
                src: d.left_hosts[i],
                dst: d.right_hosts[i],
                tag: 0,
            })
            .unwrap()
            .links()
            .to_vec()
        };
        let policy = match policy_pick {
            0 => SharingPolicy::MaxMin,
            1 => SharingPolicy::Weighted(vec![2.0, 1.0]),
            _ => SharingPolicy::Priority(vec![1, 0]),
        };
        let jobs = [
            FluidJob::single_path(a, path(0)),
            FluidJob::single_path(b, path(1)),
        ];
        let cfg = FluidConfig { policy, ..FluidConfig::fair() };
        let mut rec = BufferRecorder::new();
        {
            let mut sim = FluidSimulator::with_recorder(&t, cfg, &jobs, &mut rec);
            let per = a.iteration_time_at(LINE).max(b.iteration_time_at(LINE));
            prop_assert!(sim.run_until_iterations(4, per * 40));
        }

        assert_well_formed(rec.events());
        let round = parse_jsonl(&export::jsonl(rec.events())).expect("round-trip parses");
        prop_assert_eq!(round.as_slice(), rec.events());

        let tracks = events::extract_tracks(rec.events());
        assert_conserved(&attribution::ledger(&tracks, None));
    }
}

/// A span stream with an orphan end (its begin deleted) must be rejected
/// by the replayer, not silently folded into the ledger.
#[test]
fn mangled_span_streams_are_rejected() {
    let mut rec = BufferRecorder::new();
    fig1::run_traced(
        &Fig1Config {
            iterations: 4,
            warmup: 1,
            ..Fig1Config::default()
        },
        &mut rec,
    );
    let jsonl = export::jsonl(rec.events());
    assert!(parse_jsonl(&jsonl).is_ok(), "clean stream must parse");

    // Delete the first span_begin: its end becomes an orphan.
    let dropped: Vec<&str> = {
        let mut skipped = false;
        jsonl
            .lines()
            .filter(|l| {
                if !skipped && l.contains("\"span_begin\"") {
                    skipped = true;
                    return false;
                }
                true
            })
            .collect()
    };
    let err = parse_jsonl(&dropped.join("\n")).expect_err("orphan end must be rejected");
    assert!(err.to_string().contains("bad_span"), "got: {err}");
}

/// ISSUE 7 acceptance: attribution of the Fig. 1 run names names. The
/// unfair scenario's residual contention sits on the shared bottleneck
/// (link 0) and each job's blame table names the other job; the fair
/// scenario inflates more — unfairness *reduces* contention inflation,
/// which is the paper's point.
#[test]
fn fig1_attribution_blames_shared_link_and_competitor() {
    let mut rec = BufferRecorder::new();
    fig1::run_traced(
        &Fig1Config {
            iterations: 12,
            warmup: 3,
            ..Fig1Config::default()
        },
        &mut rec,
    );

    let mut ledgers = std::collections::BTreeMap::new();
    for slice in events::split_scenarios(rec.events()) {
        let tracks = events::extract_tracks(slice.events);
        let ledger = attribution::ledger(&tracks, None);
        assert_conserved(&ledger);
        ledgers.insert(slice.name.clone(), ledger);
    }
    let fair = &ledgers["fig1/fair"];
    let unfair = &ledgers["fig1/unfair"];

    for (name, ledger) in [("fair", fair), ("unfair", unfair)] {
        assert!(
            ledger.total_inflation() > 0.0,
            "{name}: two jobs on one link must show some inflation"
        );
        // All inflation lands on the shared bottleneck, link 0.
        let links: Vec<u32> = ledger.top_links().iter().map(|l| l.link).collect();
        assert_eq!(links, vec![0], "{name}: blame must pin link 0");
        // Each job's ledger names the competitor on that link.
        for (&job, jl) in &ledger.jobs {
            let other = 1 - job;
            assert!(
                jl.blame.get(&(0, other)).copied().unwrap_or(0.0) > 0.0,
                "{name}: job {job} must blame job {other} on link 0"
            );
        }
    }
    // The paper's headline, recovered from the blame ledger alone.
    assert!(
        fair.total_inflation() > unfair.total_inflation() * 2.0,
        "fair inflation {:.3}s should dwarf unfair {:.3}s",
        fair.total_inflation(),
        unfair.total_inflation()
    );
    assert!(fair.measured_overlap() > unfair.measured_overlap());
}
