//! Physical-plausibility properties of both network engines, checked over
//! randomized job mixes: no job ever beats dedicated-network pace, and no
//! link ever carries more than its capacity. Also differential checks of
//! the incremental max-min allocator against the from-scratch reference
//! oracle, standalone and while driving the fluid engine.

use dcqcn::CcVariant;
use faults::{ChaosConfig, ChurnChaos, LinkChaos, PhaseChaos, SignalChaos};
use mlcc::experiments::chaos;
use mlcc_repro::*;
use netsim::alloc::{
    reference, strict_priority_into, weighted_max_min_into, AllocScratch, FlowDemand,
};
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator, SharingPolicy};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use proptest::prelude::*;
use simtime::{Bandwidth, Dur, Time};
use topology::builders::dumbbell;
use topology::LinkSchedule;
use workload::{JobSpec, Model};

const LINE: Bandwidth = Bandwidth::from_gbps(50);

/// Any chaos config at all: every layer's knobs drawn independently, so
/// cases range from near-identity to all layers perturbing at once.
fn chaos_strategy() -> impl Strategy<Value = ChaosConfig> {
    (
        0u64..1_000_000,
        (0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.25, 1.0f64..4.0),
        (0.0f64..1.0, 0.05f64..1.0, 0.0f64..0.5, 0u32..4),
        (0.0f64..1.0, 0.0f64..0.4, 0.0f64..0.5),
        (0.0f64..0.3, 0.0f64..0.3),
    )
        .prop_map(|(seed, ph, li, ch, si)| ChaosConfig {
            seed,
            phase: PhaseChaos {
                compute_jitter: ph.0,
                comm_jitter: ph.1,
                straggler_prob: ph.2,
                straggler_factor: ph.3,
            },
            links: LinkChaos {
                degrade_prob: li.0,
                degrade_factor: li.1,
                flap_prob: li.2,
                flap_count: li.3,
            },
            churn: ChurnChaos {
                arrival_prob: ch.0,
                max_arrival_frac: ch.1,
                departure_prob: ch.2,
            },
            signal: SignalChaos {
                mark_loss: si.0,
                cnp_loss: si.1,
            },
        })
}

/// The largest capacity multiplier a schedule applies anywhere inside
/// `[from, to]` — the ceiling for throughput observed over that window.
fn max_mult_in(s: &LinkSchedule, from: Time, to: Time) -> f64 {
    let mut m = s.multiplier_at(from);
    for &(t, mult) in s.changes() {
        if t > from && t <= to {
            m = m.max(mult);
        }
    }
    m
}

fn spec_strategy() -> impl Strategy<Value = JobSpec> {
    (0usize..6, 1u32..4).prop_map(|(m, scale)| {
        let model = Model::ALL[m];
        // Batches scaled per model so iteration times stay in the
        // hundreds-of-ms band (BERT takes small batches).
        let base = match model {
            Model::BertLarge => 8,
            Model::Dlrm => 600,
            _ => 500,
        };
        JobSpec::reference(model, base * scale)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Rate engine: with any two jobs and any variant mix, iteration
    /// times never beat solo pace, and throughput traces never exceed
    /// capacity.
    #[test]
    fn rate_engine_no_free_lunch(
        a in spec_strategy(),
        b in spec_strategy(),
        aggressive in proptest::bool::ANY,
    ) {
        let variant = if aggressive {
            CcVariant::StaticUnfair { timer: Dur::from_micros(100) }
        } else {
            CcVariant::Fair
        };
        let cfg = RateSimConfig {
            trace_interval: Some(Dur::from_millis(1)),
            ..RateSimConfig::default()
        };
        let jobs = [RateJob::new(a, variant), RateJob::new(b, CcVariant::Fair)];
        let mut sim = RateSimulator::new(cfg, &jobs);
        let per = a.iteration_time_at(LINE).max(b.iteration_time_at(LINE));
        prop_assert!(sim.run_until_iterations(4, per * 40));
        for (k, spec) in [a, b].iter().enumerate() {
            let solo = spec.iteration_time_at(LINE).as_secs_f64();
            for d in sim.progress(k).iteration_times() {
                prop_assert!(
                    d.as_secs_f64() >= solo * 0.999,
                    "job {k} iteration {:.4}s beat solo {:.4}s",
                    d.as_secs_f64(),
                    solo
                );
            }
            // Per-job throughput ≤ line rate (small slack for sampling).
            prop_assert!(sim
                .rate_trace(k)
                .iter()
                .all(|(_, gbps)| gbps <= 50.5));
        }
        // Aggregate delivered bytes ≤ capacity × time.
        let elapsed = sim.now().as_secs_f64();
        let delivered: f64 = (0..2)
            .map(|k| {
                let done: u64 = sim.progress(k).completed() as u64;
                done as f64 * [a, b][k].comm_bytes().as_bytes() as f64
            })
            .sum();
        prop_assert!(delivered * 8.0 <= 50e9 * elapsed * 1.001);
    }

    /// Fluid engine: same invariants under any sharing policy.
    #[test]
    fn fluid_engine_no_free_lunch(
        a in spec_strategy(),
        b in spec_strategy(),
        policy_pick in 0u8..3,
    ) {
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = d.topology.clone();
        let path = |i: usize| {
            t.route(topology::FlowKey {
                src: d.left_hosts[i],
                dst: d.right_hosts[i],
                tag: 0,
            })
            .unwrap()
            .links()
            .to_vec()
        };
        let policy = match policy_pick {
            0 => SharingPolicy::MaxMin,
            1 => SharingPolicy::Weighted(vec![2.0, 1.0]),
            _ => SharingPolicy::Priority(vec![1, 0]),
        };
        let jobs = [
            FluidJob::single_path(a, path(0)),
            FluidJob::single_path(b, path(1)),
        ];
        let cfg = FluidConfig { policy, ..FluidConfig::fair() };
        let mut sim = FluidSimulator::new(&t, cfg, &jobs);
        let per = a.iteration_time_at(LINE).max(b.iteration_time_at(LINE));
        prop_assert!(sim.run_until_iterations(4, per * 40));
        for (k, spec) in [a, b].iter().enumerate() {
            let solo = spec.iteration_time_at(LINE).as_secs_f64();
            for dur in sim.progress(k).iteration_times() {
                prop_assert!(
                    dur.as_secs_f64() >= solo * 0.999,
                    "job {k} iteration {:.4}s beat solo {:.4}s",
                    dur.as_secs_f64(),
                    solo
                );
            }
            // Allocated throughput never exceeds the link.
            prop_assert!(sim
                .throughput_trace(k)
                .iter()
                .all(|(_, gbps)| gbps <= 50.0 + 1e-6));
        }
    }

    /// The incremental allocation kernel agrees with the from-scratch
    /// reference on arbitrary flow sets, for both policies, with the
    /// scratch buffers reused across the two solves. Divergence is
    /// bounded by the freeze epsilon (`1e-6` of a link), not exact,
    /// because the two drain residuals in different float orders.
    #[test]
    fn incremental_allocator_matches_reference(
        caps_gbps in proptest::collection::vec(1.0f64..100.0, 2..12),
        raw_flows in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..12, 1..4),
                0.25f64..4.0,
                0u8..3,
                (proptest::bool::ANY, 0.5f64..60.0),
            ),
            1..32,
        ),
    ) {
        let caps: Vec<f64> = caps_gbps.iter().map(|c| c * 1e9).collect();
        let links: Vec<Vec<usize>> = raw_flows
            .iter()
            .map(|(ls, ..)| {
                let mut v: Vec<usize> = ls.iter().map(|l| l % caps.len()).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let demands: Vec<FlowDemand> = raw_flows
            .iter()
            .zip(&links)
            .map(|(&(_, weight, priority, (capped, cap_gbps)), links)| FlowDemand {
                links,
                weight,
                priority,
                rate_cap: if capped { cap_gbps * 1e9 } else { f64::INFINITY },
            })
            .collect();
        let tol = 1e-6 * caps.iter().fold(1.0f64, |a, &b| a.max(b)) + 1.0;

        let mut scratch = AllocScratch::default();
        let mut rates = Vec::new();
        weighted_max_min_into(&demands, &caps, &mut scratch, &mut rates);
        let oracle = reference::weighted_max_min(&demands, &caps);
        for (i, (got, want)) in rates.iter().zip(&oracle).enumerate() {
            prop_assert!(
                (got - want).abs() <= tol,
                "max-min flow {i}: incremental {got} vs reference {want}"
            );
        }

        strict_priority_into(&demands, &caps, &mut scratch, &mut rates);
        let oracle = reference::strict_priority(&demands, &caps);
        for (i, (got, want)) in rates.iter().zip(&oracle).enumerate() {
            prop_assert!(
                (got - want).abs() <= tol,
                "priority flow {i}: incremental {got} vs reference {want}"
            );
        }
    }

    /// Driving the fluid engine in arbitrary small time slices, the rates
    /// produced by its incremental allocation path never drift from the
    /// from-scratch reference solve on the same active set.
    #[test]
    fn fluid_incremental_rates_match_reference_in_slices(
        a in spec_strategy(),
        b in spec_strategy(),
        policy_pick in 0u8..3,
        slice_ms in 1u64..12,
    ) {
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = d.topology.clone();
        let path = |i: usize| {
            t.route(topology::FlowKey {
                src: d.left_hosts[i],
                dst: d.right_hosts[i],
                tag: 0,
            })
            .unwrap()
            .links()
            .to_vec()
        };
        let policy = match policy_pick {
            0 => SharingPolicy::MaxMin,
            1 => SharingPolicy::Weighted(vec![2.0, 1.0]),
            _ => SharingPolicy::Priority(vec![1, 0]),
        };
        let jobs = [
            FluidJob::single_path(a, path(0)),
            FluidJob::single_path(b, path(1)),
        ];
        let cfg = FluidConfig { policy, ..FluidConfig::fair() };
        let mut sim = FluidSimulator::new(&t, cfg, &jobs);
        for _ in 0..60 {
            sim.run_for(Dur::from_millis(slice_ms));
            if let Some(div) = sim.debug_max_rate_divergence() {
                prop_assert!(
                    div <= 1.0,
                    "incremental rates diverged {div} bps from reference"
                );
            }
        }
    }

    /// Rate engine under arbitrary fault injection: throughput never goes
    /// negative, per-sample occupancy respects the (possibly degraded)
    /// bottleneck capacity, iteration completions stay strictly monotone,
    /// and aggregate delivered bytes never exceed capacity × time.
    #[test]
    fn rate_engine_conserves_under_chaos(
        a in spec_strategy(),
        b in spec_strategy(),
        chaos_cfg in chaos_strategy(),
    ) {
        let trace = Dur::from_millis(1);
        let mut sim_cfg = RateSimConfig {
            trace_interval: Some(trace),
            ..RateSimConfig::default()
        };
        let mut jobs = [
            RateJob::new(a, CcVariant::StaticUnfair { timer: Dur::from_micros(100) }),
            RateJob::new(b, CcVariant::Fair),
        ];
        let per = a.iteration_time_at(LINE).max(b.iteration_time_at(LINE));
        let horizon = per * 10;
        chaos::apply_rate(&chaos_cfg, &mut jobs, &mut sim_cfg, horizon);
        let schedule = sim_cfg
            .capacity_schedule
            .clone()
            .unwrap_or_else(LinkSchedule::identity);
        let mut sim = RateSimulator::new(sim_cfg, &jobs);
        sim.run_for(horizon);

        // Occupancy: each 1 ms sample's aggregate delivered rate fits
        // under the largest capacity in effect anywhere in its window
        // (same 1 % + 0.5 Gbps sampling slack as the chaos-free test).
        for ((t, g0), (t1, g1)) in sim.rate_trace(0).iter().zip(sim.rate_trace(1).iter()) {
            prop_assert_eq!(t, t1, "job traces sampled at different instants");
            prop_assert!(g0 >= -1e-9 && g1 >= -1e-9, "negative rate at {t:?}");
            let from = if t.saturating_since(Time::ZERO) >= trace {
                t - trace
            } else {
                Time::ZERO
            };
            let cap = 50.0 * max_mult_in(&schedule, from, t);
            prop_assert!(
                g0 + g1 <= cap * 1.01 + 0.5,
                "occupancy {:.2} Gbps exceeds degraded capacity {cap:.2} at {t:?}",
                g0 + g1
            );
        }
        // Monotone progress: completion instants strictly increase.
        for k in 0..2 {
            for w in sim.progress(k).iterations().windows(2) {
                prop_assert!(
                    w[0].completed < w[1].completed,
                    "job {k}: iteration completions not increasing"
                );
            }
        }
        // Conservation: delivered bytes ≤ nominal capacity × elapsed time
        // (degradation only ever lowers the bound).
        let elapsed = sim.now().as_secs_f64();
        let delivered: f64 = (0..2)
            .map(|k| {
                let done = sim.progress(k).completed() as f64;
                done * [a, b][k].comm_bytes().as_bytes() as f64
            })
            .sum();
        prop_assert!(delivered * 8.0 <= 50e9 * elapsed * 1.001);
    }

    /// Fluid engine under the same arbitrary fault plans: allocated rates
    /// never go negative and never exceed any path link's (possibly
    /// degraded) capacity, and completions stay strictly monotone.
    #[test]
    fn fluid_engine_conserves_under_chaos(
        a in spec_strategy(),
        b in spec_strategy(),
        chaos_cfg in chaos_strategy(),
    ) {
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = d.topology.clone();
        let path = |i: usize| {
            t.route(topology::FlowKey {
                src: d.left_hosts[i],
                dst: d.right_hosts[i],
                tag: 0,
            })
            .unwrap()
            .links()
            .to_vec()
        };
        let per = a.iteration_time_at(LINE).max(b.iteration_time_at(LINE));
        let horizon = per * 10;
        let plan = chaos_cfg.compile(2, t.link_count(), horizon);
        let mut jobs = [
            FluidJob::single_path(a, path(0)),
            FluidJob::single_path(b, path(1)),
        ];
        for (j, job) in jobs.iter_mut().enumerate() {
            job.noise = plan.noise[j];
            job.depart_at = plan.departures[j];
        }
        let cfg = FluidConfig {
            link_schedules: plan.link_schedules.clone(),
            ..FluidConfig::fair()
        };
        let mut sim = FluidSimulator::new(&t, cfg, &jobs);
        sim.run_for(horizon);

        let eps = Dur::from_micros(1);
        for (k, paths) in [path(0), path(1)].iter().enumerate() {
            // Allocated throughput obeys every (degraded) link on the path.
            for (at, gbps) in sim.throughput_trace(k).iter() {
                prop_assert!(gbps >= -1e-9, "job {k}: negative rate at {at:?}");
                for l in paths {
                    let Some(s) = plan.link_schedules.get(l.0 as usize) else {
                        continue;
                    };
                    let from = if at.saturating_since(Time::ZERO) >= eps {
                        at - eps
                    } else {
                        Time::ZERO
                    };
                    let cap = 50.0 * max_mult_in(s, from, at + eps);
                    prop_assert!(
                        gbps <= cap + 1e-6,
                        "job {k}: {gbps:.3} Gbps over link {l:?} cap {cap:.3} at {at:?}"
                    );
                }
            }
            for w in sim.progress(k).iterations().windows(2) {
                prop_assert!(
                    w[0].completed < w[1].completed,
                    "job {k}: iteration completions not increasing"
                );
            }
        }
    }
}
