//! Physical-plausibility properties of both network engines, checked over
//! randomized job mixes: no job ever beats dedicated-network pace, and no
//! link ever carries more than its capacity. Also differential checks of
//! the incremental max-min allocator against the from-scratch reference
//! oracle, standalone and while driving the fluid engine.

use dcqcn::CcVariant;
use mlcc_repro::*;
use netsim::alloc::{
    reference, strict_priority_into, weighted_max_min_into, AllocScratch, FlowDemand,
};
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator, SharingPolicy};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use proptest::prelude::*;
use simtime::{Bandwidth, Dur};
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

const LINE: Bandwidth = Bandwidth::from_gbps(50);

fn spec_strategy() -> impl Strategy<Value = JobSpec> {
    (0usize..6, 1u32..4).prop_map(|(m, scale)| {
        let model = Model::ALL[m];
        // Batches scaled per model so iteration times stay in the
        // hundreds-of-ms band (BERT takes small batches).
        let base = match model {
            Model::BertLarge => 8,
            Model::Dlrm => 600,
            _ => 500,
        };
        JobSpec::reference(model, base * scale)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Rate engine: with any two jobs and any variant mix, iteration
    /// times never beat solo pace, and throughput traces never exceed
    /// capacity.
    #[test]
    fn rate_engine_no_free_lunch(
        a in spec_strategy(),
        b in spec_strategy(),
        aggressive in proptest::bool::ANY,
    ) {
        let variant = if aggressive {
            CcVariant::StaticUnfair { timer: Dur::from_micros(100) }
        } else {
            CcVariant::Fair
        };
        let cfg = RateSimConfig {
            trace_interval: Some(Dur::from_millis(1)),
            ..RateSimConfig::default()
        };
        let jobs = [RateJob::new(a, variant), RateJob::new(b, CcVariant::Fair)];
        let mut sim = RateSimulator::new(cfg, &jobs);
        let per = a.iteration_time_at(LINE).max(b.iteration_time_at(LINE));
        prop_assert!(sim.run_until_iterations(4, per * 40));
        for (k, spec) in [a, b].iter().enumerate() {
            let solo = spec.iteration_time_at(LINE).as_secs_f64();
            for d in sim.progress(k).iteration_times() {
                prop_assert!(
                    d.as_secs_f64() >= solo * 0.999,
                    "job {k} iteration {:.4}s beat solo {:.4}s",
                    d.as_secs_f64(),
                    solo
                );
            }
            // Per-job throughput ≤ line rate (small slack for sampling).
            prop_assert!(sim
                .rate_trace(k)
                .iter()
                .all(|(_, gbps)| gbps <= 50.5));
        }
        // Aggregate delivered bytes ≤ capacity × time.
        let elapsed = sim.now().as_secs_f64();
        let delivered: f64 = (0..2)
            .map(|k| {
                let done: u64 = sim.progress(k).completed() as u64;
                done as f64 * [a, b][k].comm_bytes().as_bytes() as f64
            })
            .sum();
        prop_assert!(delivered * 8.0 <= 50e9 * elapsed * 1.001);
    }

    /// Fluid engine: same invariants under any sharing policy.
    #[test]
    fn fluid_engine_no_free_lunch(
        a in spec_strategy(),
        b in spec_strategy(),
        policy_pick in 0u8..3,
    ) {
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = d.topology.clone();
        let path = |i: usize| {
            t.route(topology::FlowKey {
                src: d.left_hosts[i],
                dst: d.right_hosts[i],
                tag: 0,
            })
            .unwrap()
            .links()
            .to_vec()
        };
        let policy = match policy_pick {
            0 => SharingPolicy::MaxMin,
            1 => SharingPolicy::Weighted(vec![2.0, 1.0]),
            _ => SharingPolicy::Priority(vec![1, 0]),
        };
        let jobs = [
            FluidJob::single_path(a, path(0)),
            FluidJob::single_path(b, path(1)),
        ];
        let cfg = FluidConfig { policy, ..FluidConfig::fair() };
        let mut sim = FluidSimulator::new(&t, cfg, &jobs);
        let per = a.iteration_time_at(LINE).max(b.iteration_time_at(LINE));
        prop_assert!(sim.run_until_iterations(4, per * 40));
        for (k, spec) in [a, b].iter().enumerate() {
            let solo = spec.iteration_time_at(LINE).as_secs_f64();
            for dur in sim.progress(k).iteration_times() {
                prop_assert!(
                    dur.as_secs_f64() >= solo * 0.999,
                    "job {k} iteration {:.4}s beat solo {:.4}s",
                    dur.as_secs_f64(),
                    solo
                );
            }
            // Allocated throughput never exceeds the link.
            prop_assert!(sim
                .throughput_trace(k)
                .iter()
                .all(|(_, gbps)| gbps <= 50.0 + 1e-6));
        }
    }

    /// The incremental allocation kernel agrees with the from-scratch
    /// reference on arbitrary flow sets, for both policies, with the
    /// scratch buffers reused across the two solves. Divergence is
    /// bounded by the freeze epsilon (`1e-6` of a link), not exact,
    /// because the two drain residuals in different float orders.
    #[test]
    fn incremental_allocator_matches_reference(
        caps_gbps in proptest::collection::vec(1.0f64..100.0, 2..12),
        raw_flows in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..12, 1..4),
                0.25f64..4.0,
                0u8..3,
                (proptest::bool::ANY, 0.5f64..60.0),
            ),
            1..32,
        ),
    ) {
        let caps: Vec<f64> = caps_gbps.iter().map(|c| c * 1e9).collect();
        let links: Vec<Vec<usize>> = raw_flows
            .iter()
            .map(|(ls, ..)| {
                let mut v: Vec<usize> = ls.iter().map(|l| l % caps.len()).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let demands: Vec<FlowDemand> = raw_flows
            .iter()
            .zip(&links)
            .map(|(&(_, weight, priority, (capped, cap_gbps)), links)| FlowDemand {
                links,
                weight,
                priority,
                rate_cap: if capped { cap_gbps * 1e9 } else { f64::INFINITY },
            })
            .collect();
        let tol = 1e-6 * caps.iter().fold(1.0f64, |a, &b| a.max(b)) + 1.0;

        let mut scratch = AllocScratch::default();
        let mut rates = Vec::new();
        weighted_max_min_into(&demands, &caps, &mut scratch, &mut rates);
        let oracle = reference::weighted_max_min(&demands, &caps);
        for (i, (got, want)) in rates.iter().zip(&oracle).enumerate() {
            prop_assert!(
                (got - want).abs() <= tol,
                "max-min flow {i}: incremental {got} vs reference {want}"
            );
        }

        strict_priority_into(&demands, &caps, &mut scratch, &mut rates);
        let oracle = reference::strict_priority(&demands, &caps);
        for (i, (got, want)) in rates.iter().zip(&oracle).enumerate() {
            prop_assert!(
                (got - want).abs() <= tol,
                "priority flow {i}: incremental {got} vs reference {want}"
            );
        }
    }

    /// Driving the fluid engine in arbitrary small time slices, the rates
    /// produced by its incremental allocation path never drift from the
    /// from-scratch reference solve on the same active set.
    #[test]
    fn fluid_incremental_rates_match_reference_in_slices(
        a in spec_strategy(),
        b in spec_strategy(),
        policy_pick in 0u8..3,
        slice_ms in 1u64..12,
    ) {
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = d.topology.clone();
        let path = |i: usize| {
            t.route(topology::FlowKey {
                src: d.left_hosts[i],
                dst: d.right_hosts[i],
                tag: 0,
            })
            .unwrap()
            .links()
            .to_vec()
        };
        let policy = match policy_pick {
            0 => SharingPolicy::MaxMin,
            1 => SharingPolicy::Weighted(vec![2.0, 1.0]),
            _ => SharingPolicy::Priority(vec![1, 0]),
        };
        let jobs = [
            FluidJob::single_path(a, path(0)),
            FluidJob::single_path(b, path(1)),
        ];
        let cfg = FluidConfig { policy, ..FluidConfig::fair() };
        let mut sim = FluidSimulator::new(&t, cfg, &jobs);
        for _ in 0..60 {
            sim.run_for(Dur::from_millis(slice_ms));
            if let Some(div) = sim.debug_max_rate_divergence() {
                prop_assert!(
                    div <= 1.0,
                    "incremental rates diverged {div} bps from reference"
                );
            }
        }
    }
}
