//! Cross-engine consistency: the idealized fluid engine and the emergent
//! rate-based DCQCN engine must agree on the physics they share — including
//! under seeded fault injection, where all three engines (fluid, rate,
//! packet) must realize the *same* chaos schedule.

use dcqcn::CcVariant;
use diagnostics::{recovery, RecoveryConfig, RecoveryReport};
use eventsim::Cdf;
use faults::{ChaosConfig, PhaseChaos};
use mlcc_repro::*;
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator, SharingPolicy};
use netsim::packet::{PacketJob, PacketSimConfig, PacketSimulator};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use simtime::{Bandwidth, Dur, Time};
use telemetry::BufferRecorder;
use topology::builders::dumbbell;
use workload::{JobProgress, JobSpec, Model};

const LINE: Bandwidth = Bandwidth::from_gbps(50);

fn median_ms(progress: &JobProgress, skip: usize) -> f64 {
    let t: Vec<_> = progress.iteration_times().into_iter().skip(skip).collect();
    Cdf::from_samples(t).median().as_millis_f64()
}

fn fluid_pair(spec: JobSpec, policy: SharingPolicy, iters: usize) -> Vec<f64> {
    let d = dumbbell(2, LINE, LINE, Dur::ZERO);
    let t = &d.topology;
    let jobs: Vec<FluidJob> = (0..2)
        .map(|i| {
            let path = t
                .route(topology::FlowKey {
                    src: d.left_hosts[i],
                    dst: d.right_hosts[i],
                    tag: 0,
                })
                .unwrap();
            FluidJob::single_path(spec, path.links().to_vec())
        })
        .collect();
    let cfg = FluidConfig {
        policy,
        ..FluidConfig::fair()
    };
    let mut sim = FluidSimulator::new(t, cfg, &jobs);
    assert!(sim.run_until_iterations(iters, Dur::from_secs(30)));
    (0..2)
        .map(|i| median_ms(sim.progress(i), iters / 3))
        .collect()
}

fn rate_pair(spec: JobSpec, variants: [CcVariant; 2], iters: usize) -> Vec<f64> {
    let jobs = [
        RateJob::new(spec, variants[0]),
        RateJob::new(spec, variants[1]),
    ];
    let mut sim = RateSimulator::new(RateSimConfig::default(), &jobs);
    assert!(sim.run_until_iterations(iters, Dur::from_secs(30)));
    (0..2)
        .map(|i| median_ms(sim.progress(i), iters / 3))
        .collect()
}

/// Two identical synchronized jobs under fair sharing: both engines lock
/// them at K + 2C.
#[test]
fn fair_locked_state_agrees_across_engines() {
    let spec = JobSpec::reference(Model::Vgg19, 1200);
    let expected = (spec.compute_time() + spec.comm_time_at(LINE) * 2).as_millis_f64();
    let fluid = fluid_pair(spec, SharingPolicy::MaxMin, 8);
    let rate = rate_pair(spec, [CcVariant::Fair, CcVariant::Fair], 8);
    for k in 0..2 {
        assert!(
            (fluid[k] - expected).abs() < 1.0,
            "fluid job {k}: {:.1} vs {expected:.1}",
            fluid[k]
        );
        assert!(
            (rate[k] - expected).abs() < expected * 0.01,
            "rate job {k}: {:.1} vs {expected:.1}",
            rate[k]
        );
    }
}

/// Unfairness realized two ways — DCQCN timer asymmetry (emergent) and
/// weighted max-min (imposed) — both converge compatible jobs to solo pace.
#[test]
fn unfair_interleave_agrees_across_engines() {
    let spec = JobSpec::reference(Model::Vgg19, 1200);
    let solo = spec.iteration_time_at(LINE).as_millis_f64();
    let fluid = fluid_pair(spec, SharingPolicy::Weighted(vec![2.0, 1.0]), 12);
    let rate = rate_pair(
        spec,
        [
            CcVariant::StaticUnfair {
                timer: Dur::from_micros(100),
            },
            CcVariant::Fair,
        ],
        12,
    );
    for k in 0..2 {
        assert!(
            (fluid[k] - solo).abs() < 2.0,
            "fluid job {k}: {:.1} vs solo {solo:.1}",
            fluid[k]
        );
        assert!(
            (rate[k] - solo).abs() < solo * 0.02,
            "rate job {k}: {:.1} vs solo {solo:.1}",
            rate[k]
        );
    }
}

/// One engine's observation of a chaos run: per-job iteration times and
/// completion instants, plus the recovery analyzer's verdict on its
/// telemetry.
struct ChaosRun {
    times: Vec<Vec<Dur>>,
    completions: Vec<Vec<Time>>,
    report: RecoveryReport,
}

impl ChaosRun {
    /// All iteration completions as `((job, iteration), instant)`.
    fn events(&self) -> Vec<((usize, usize), Time)> {
        self.completions
            .iter()
            .enumerate()
            .flat_map(|(j, ts)| ts.iter().enumerate().map(move |(i, &t)| ((j, i), t)))
            .collect()
    }

    fn median_ms(&self, job: usize, skip: usize) -> f64 {
        Cdf::from_samples(self.times[job].iter().skip(skip).copied().collect())
            .median()
            .as_millis_f64()
    }
}

/// The engines must agree on every *decisive* ordering of completion
/// events once the interleaving slide has settled (the slide's transient
/// evolves at engine-specific speeds, so the first iterations are
/// exempt). Interleaved jobs finish each round within hairs of each
/// other and the within-round order is engine micro-timing, so ties
/// (events closer than half a median iteration) are also exempt — but a
/// straggler shifts completions by whole iterations, and those
/// reorderings must look the same everywhere.
fn assert_order_conforms(a: &ChaosRun, b: &ChaosRun, label: &str) {
    let settled = |ev: Vec<((usize, usize), Time)>| -> Vec<((usize, usize), Time)> {
        ev.into_iter().filter(|((_, i), _)| *i >= 3).collect()
    };
    let (ea, eb) = (settled(a.events()), settled(b.events()));
    let eps_of = |run: &ChaosRun| Dur::from_micros((run.median_ms(0, 3) * 500.0) as u64);
    let (eps_a, eps_b) = (eps_of(a), eps_of(b));
    let time_in = |ev: &[((usize, usize), Time)], key| {
        ev.iter().find(|(k, _)| *k == key).expect("same grid").1
    };
    for &(k1, t1) in &ea {
        for &(k2, t2) in &ea {
            if t1 + eps_a < t2 {
                let (u1, u2) = (time_in(&eb, k1), time_in(&eb, k2));
                assert!(
                    u2 + eps_b > u1,
                    "{label}: {k1:?} decisively precedes {k2:?} in one engine \
                     ({t1:?} vs {t2:?}) but follows it in the other ({u1:?} vs {u2:?})"
                );
            }
        }
    }
}

/// The seeded straggler schedule used by the three-engine conformance
/// test: each job straggles exactly once, mid-run (job 0 at iteration 5,
/// job 1 at iteration 4), so every engine must show one finite-recovery
/// incident per job.
fn straggler_chaos() -> ChaosConfig {
    ChaosConfig {
        seed: 6,
        phase: PhaseChaos {
            compute_jitter: 0.05,
            comm_jitter: 0.0,
            straggler_prob: 0.15,
            straggler_factor: 3.0,
        },
        ..ChaosConfig::none()
    }
}

const CHAOS_ITERS: usize = 16;

/// Tentpole conformance: one seeded fault schedule, three engines.
///
/// Phase noise is keyed and stateless — the scale factors for iteration
/// `i` of job `j` are a pure function of `(seed, j, i)` — so the fluid,
/// rate, and packet engines must realize the *same* stragglers no matter
/// how their internal event loops interleave. They must agree on the
/// global iteration-completion order, on per-job iteration-time medians,
/// and on the physics of the perturbation: exactly the scheduled
/// iterations run slow. And the recovery analyzer must report every
/// incident recovering in finite time in all three engines (the paper's
/// interleaved steady state re-establishes itself after a straggler).
#[test]
fn seeded_stragglers_conform_across_three_engines() {
    let spec = JobSpec::reference(Model::ResNet50, 400);
    let chaos = straggler_chaos();
    let plan = chaos.compile(2, 1, Dur::from_secs(1));
    let stragglers: Vec<(usize, u32)> = (0..2)
        .flat_map(|j| {
            let n = plan.noise[j].expect("phase layer is on");
            (0..CHAOS_ITERS as u32).filter_map(move |i| n.is_straggler(i).then_some((j, i)))
        })
        .collect();
    assert_eq!(
        stragglers,
        vec![(0, 5), (1, 4)],
        "the pinned seed's schedule moved — fix the doc comment too"
    );

    // Rate engine: the aggressive/fair pair slides into interleaving.
    let rate = {
        let mut rec = BufferRecorder::new();
        let mut jobs = [
            RateJob::new(
                spec,
                CcVariant::StaticUnfair {
                    timer: Dur::from_micros(100),
                },
            ),
            RateJob::new(spec, CcVariant::Fair),
        ];
        for (j, job) in jobs.iter_mut().enumerate() {
            job.noise = plan.noise[j];
        }
        let mut sim = RateSimulator::with_recorder(RateSimConfig::default(), &jobs, &mut rec);
        assert!(sim.run_until_iterations(CHAOS_ITERS, Dur::from_secs(10)));
        let times: Vec<Vec<Dur>> = (0..2).map(|i| sim.progress(i).iteration_times()).collect();
        let completions = (0..2)
            .map(|i| {
                sim.progress(i)
                    .iterations()
                    .iter()
                    .map(|t| t.completed)
                    .collect()
            })
            .collect();
        drop(sim);
        ChaosRun {
            times,
            completions,
            report: recovery(rec.events(), &RecoveryConfig::default()),
        }
    };

    // Packet engine: same pair, per-packet granularity.
    let pkt = {
        let mut rec = BufferRecorder::new();
        let mut jobs = [
            PacketJob::new(
                spec,
                CcVariant::StaticUnfair {
                    timer: Dur::from_micros(100),
                },
            ),
            PacketJob::new(spec, CcVariant::Fair),
        ];
        for (j, job) in jobs.iter_mut().enumerate() {
            job.noise = plan.noise[j];
        }
        let mut sim = PacketSimulator::with_recorder(PacketSimConfig::default(), &jobs, &mut rec);
        assert!(sim.run_until_iterations(CHAOS_ITERS, Dur::from_secs(10)));
        let times: Vec<Vec<Dur>> = (0..2).map(|i| sim.progress(i).iteration_times()).collect();
        let completions = (0..2)
            .map(|i| {
                sim.progress(i)
                    .iterations()
                    .iter()
                    .map(|t| t.completed)
                    .collect()
            })
            .collect();
        drop(sim);
        ChaosRun {
            times,
            completions,
            report: recovery(rec.events(), &RecoveryConfig::default()),
        }
    };

    // Fluid engine: weighted max-min imposes the same interleaving the
    // DCQCN timer asymmetry produces emergently.
    let fluid = {
        let mut rec = BufferRecorder::new();
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = &d.topology;
        let mut jobs: Vec<FluidJob> = (0..2)
            .map(|i| {
                let path = t
                    .route(topology::FlowKey {
                        src: d.left_hosts[i],
                        dst: d.right_hosts[i],
                        tag: 0,
                    })
                    .unwrap();
                FluidJob::single_path(spec, path.links().to_vec())
            })
            .collect();
        for (j, job) in jobs.iter_mut().enumerate() {
            job.noise = plan.noise[j];
        }
        let cfg = FluidConfig {
            policy: SharingPolicy::Weighted(vec![2.0, 1.0]),
            ..FluidConfig::fair()
        };
        let mut sim = FluidSimulator::with_recorder(t, cfg, &jobs, &mut rec);
        assert!(sim.run_until_iterations(CHAOS_ITERS, Dur::from_secs(10)));
        let times: Vec<Vec<Dur>> = (0..2).map(|i| sim.progress(i).iteration_times()).collect();
        let completions = (0..2)
            .map(|i| {
                sim.progress(i)
                    .iterations()
                    .iter()
                    .map(|t| t.completed)
                    .collect()
            })
            .collect();
        drop(sim);
        ChaosRun {
            times,
            completions,
            report: recovery(rec.events(), &RecoveryConfig::default()),
        }
    };

    let engines = [("rate", &rate), ("packet", &pkt), ("fluid", &fluid)];

    // 1. Every engine realizes exactly the scheduled stragglers: the
    // straggler iterations are materially slower than the job's median,
    // and once the disruption has passed the tail of the run is back to
    // normal. (Early iterations are exempt — the interleaving slide and
    // the collateral damage right after a straggler are legitimately
    // slow without being stragglers themselves.)
    let extra = spec.compute_time().as_millis_f64() * 1.5; // 2×compute stretch, conservatively
    for (name, run) in &engines {
        for j in 0..2 {
            let med = run.median_ms(j, 0);
            for i in 0..CHAOS_ITERS {
                let t = run.times[j][i].as_millis_f64();
                if stragglers.contains(&(j, i as u32)) {
                    assert!(
                        t > med + extra,
                        "{name} job {j}: scheduled straggler {i} not slow ({t:.1} vs median {med:.1})"
                    );
                } else if i >= CHAOS_ITERS - 3 {
                    assert!(
                        t < med + extra,
                        "{name} job {j}: tail iteration {i} still slow ({t:.1} vs median {med:.1})"
                    );
                }
            }
        }
    }

    // 2. The engines agree on the global completion order (up to
    // within-round ties).
    assert_order_conforms(&rate, &pkt, "rate vs packet");
    assert_order_conforms(&rate, &fluid, "rate vs fluid");
    assert_order_conforms(&fluid, &pkt, "fluid vs packet");

    // 3. Per-job medians agree across engines (existing cross-engine
    // tolerances: rate and fluid are both idealized, packet is noisier).
    for j in 0..2 {
        let f = fluid.median_ms(j, 3);
        let r = rate.median_ms(j, 3);
        let p = pkt.median_ms(j, 3);
        assert!(
            (r - f).abs() < f * 0.04,
            "job {j} median: rate {r:.1} vs fluid {f:.1}"
        );
        assert!(
            (p - f).abs() < f * 0.08,
            "job {j} median: packet {p:.1} vs fluid {f:.1}"
        );
    }

    // 4. The recovery analyzer sees the incidents and a finite
    // time-to-reinterleave in every engine.
    for (name, run) in &engines {
        let incidents: usize = run.report.jobs.iter().map(|j| j.incidents.len()).sum();
        assert!(
            incidents >= 2,
            "{name}: expected both stragglers as incidents"
        );
        assert!(
            run.report.all_recovered(),
            "{name}: an incident never recovered"
        );
        for j in &run.report.jobs {
            if j.incidents.is_empty() {
                continue;
            }
            let worst = j
                .worst_recovery()
                .unwrap_or_else(|| panic!("{name} job {}: recovery not finite", j.job));
            assert!(
                !worst.is_zero(),
                "{name} job {}: zero-width recovery is implausible",
                j.job
            );
        }
    }
}

/// A lone job runs at its analytic solo pace in both engines.
#[test]
fn solo_pace_agrees_across_engines() {
    for model in [Model::Vgg16, Model::Dlrm, Model::ResNet50] {
        let spec = JobSpec::reference(model, 1400);
        let solo = spec.iteration_time_at(LINE).as_millis_f64();

        let d = dumbbell(1, LINE, LINE, Dur::ZERO);
        let path = d
            .topology
            .route(topology::FlowKey {
                src: d.left_hosts[0],
                dst: d.right_hosts[0],
                tag: 0,
            })
            .unwrap();
        let mut fluid = FluidSimulator::new(
            &d.topology,
            FluidConfig::fair(),
            &[FluidJob::single_path(spec, path.links().to_vec())],
        );
        assert!(fluid.run_until_iterations(4, Dur::from_secs(30)));
        let f = median_ms(fluid.progress(0), 0);

        let mut rate = RateSimulator::new(
            RateSimConfig::default(),
            &[RateJob::new(spec, CcVariant::Fair)],
        );
        assert!(rate.run_until_iterations(4, Dur::from_secs(30)));
        let r = median_ms(rate.progress(0), 1);

        assert!(
            (f - solo).abs() < 0.5,
            "{model:?} fluid {f:.2} vs {solo:.2}"
        );
        assert!(
            (r - solo).abs() < solo * 0.02,
            "{model:?} rate {r:.2} vs {solo:.2}"
        );
    }
}
