//! Cross-engine consistency: the idealized fluid engine and the emergent
//! rate-based DCQCN engine must agree on the physics they share.

use dcqcn::CcVariant;
use eventsim::Cdf;
use mlcc_repro::*;
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator, SharingPolicy};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use simtime::{Bandwidth, Dur};
use topology::builders::dumbbell;
use workload::{JobProgress, JobSpec, Model};

const LINE: Bandwidth = Bandwidth::from_gbps(50);

fn median_ms(progress: &JobProgress, skip: usize) -> f64 {
    let t: Vec<_> = progress.iteration_times().into_iter().skip(skip).collect();
    Cdf::from_samples(t).median().as_millis_f64()
}

fn fluid_pair(spec: JobSpec, policy: SharingPolicy, iters: usize) -> Vec<f64> {
    let d = dumbbell(2, LINE, LINE, Dur::ZERO);
    let t = &d.topology;
    let jobs: Vec<FluidJob> = (0..2)
        .map(|i| {
            let path = t
                .route(topology::FlowKey {
                    src: d.left_hosts[i],
                    dst: d.right_hosts[i],
                    tag: 0,
                })
                .unwrap();
            FluidJob::single_path(spec, path.links().to_vec())
        })
        .collect();
    let cfg = FluidConfig {
        policy,
        ..FluidConfig::fair()
    };
    let mut sim = FluidSimulator::new(t, cfg, &jobs);
    assert!(sim.run_until_iterations(iters, Dur::from_secs(30)));
    (0..2)
        .map(|i| median_ms(sim.progress(i), iters / 3))
        .collect()
}

fn rate_pair(spec: JobSpec, variants: [CcVariant; 2], iters: usize) -> Vec<f64> {
    let jobs = [
        RateJob::new(spec, variants[0]),
        RateJob::new(spec, variants[1]),
    ];
    let mut sim = RateSimulator::new(RateSimConfig::default(), &jobs);
    assert!(sim.run_until_iterations(iters, Dur::from_secs(30)));
    (0..2)
        .map(|i| median_ms(sim.progress(i), iters / 3))
        .collect()
}

/// Two identical synchronized jobs under fair sharing: both engines lock
/// them at K + 2C.
#[test]
fn fair_locked_state_agrees_across_engines() {
    let spec = JobSpec::reference(Model::Vgg19, 1200);
    let expected = (spec.compute_time() + spec.comm_time_at(LINE) * 2).as_millis_f64();
    let fluid = fluid_pair(spec, SharingPolicy::MaxMin, 8);
    let rate = rate_pair(spec, [CcVariant::Fair, CcVariant::Fair], 8);
    for k in 0..2 {
        assert!(
            (fluid[k] - expected).abs() < 1.0,
            "fluid job {k}: {:.1} vs {expected:.1}",
            fluid[k]
        );
        assert!(
            (rate[k] - expected).abs() < expected * 0.01,
            "rate job {k}: {:.1} vs {expected:.1}",
            rate[k]
        );
    }
}

/// Unfairness realized two ways — DCQCN timer asymmetry (emergent) and
/// weighted max-min (imposed) — both converge compatible jobs to solo pace.
#[test]
fn unfair_interleave_agrees_across_engines() {
    let spec = JobSpec::reference(Model::Vgg19, 1200);
    let solo = spec.iteration_time_at(LINE).as_millis_f64();
    let fluid = fluid_pair(spec, SharingPolicy::Weighted(vec![2.0, 1.0]), 12);
    let rate = rate_pair(
        spec,
        [
            CcVariant::StaticUnfair {
                timer: Dur::from_micros(100),
            },
            CcVariant::Fair,
        ],
        12,
    );
    for k in 0..2 {
        assert!(
            (fluid[k] - solo).abs() < 2.0,
            "fluid job {k}: {:.1} vs solo {solo:.1}",
            fluid[k]
        );
        assert!(
            (rate[k] - solo).abs() < solo * 0.02,
            "rate job {k}: {:.1} vs solo {solo:.1}",
            rate[k]
        );
    }
}

/// A lone job runs at its analytic solo pace in both engines.
#[test]
fn solo_pace_agrees_across_engines() {
    for model in [Model::Vgg16, Model::Dlrm, Model::ResNet50] {
        let spec = JobSpec::reference(model, 1400);
        let solo = spec.iteration_time_at(LINE).as_millis_f64();

        let d = dumbbell(1, LINE, LINE, Dur::ZERO);
        let path = d
            .topology
            .route(topology::FlowKey {
                src: d.left_hosts[0],
                dst: d.right_hosts[0],
                tag: 0,
            })
            .unwrap();
        let mut fluid = FluidSimulator::new(
            &d.topology,
            FluidConfig::fair(),
            &[FluidJob::single_path(spec, path.links().to_vec())],
        );
        assert!(fluid.run_until_iterations(4, Dur::from_secs(30)));
        let f = median_ms(fluid.progress(0), 0);

        let mut rate = RateSimulator::new(
            RateSimConfig::default(),
            &[RateJob::new(spec, CcVariant::Fair)],
        );
        assert!(rate.run_until_iterations(4, Dur::from_secs(30)));
        let r = median_ms(rate.progress(0), 1);

        assert!(
            (f - solo).abs() < 0.5,
            "{model:?} fluid {f:.2} vs {solo:.2}"
        );
        assert!(
            (r - solo).abs() < solo * 0.02,
            "{model:?} rate {r:.2} vs {solo:.2}"
        );
    }
}
