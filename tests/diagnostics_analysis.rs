//! End-to-end checks of the diagnostics pipeline against real experiment
//! traces: the interleaving auditor must *measure* the paper's thesis
//! (unfairness interleaves communication), replay must agree with the live
//! recorder, and the summary diff must catch real drift.

use diagnostics::{analyze, diff, AnalysisConfig, DiffConfig};
use mlcc::experiments::fig1::{self, Fig1Config};
use mlcc_repro::*;
use telemetry::BufferRecorder;

fn fig1_cfg(iterations: usize) -> Fig1Config {
    Fig1Config {
        iterations,
        ..Fig1Config::default()
    }
}

/// The acceptance criterion: under unfair DCQCN the two jobs' communication
/// phases interleave, so the measured overlap fraction is strictly lower
/// than under fair sharing (where both jobs contend continuously).
#[test]
fn unfair_fig1_interleaves_more_than_fair() {
    let mut rec = BufferRecorder::new();
    fig1::run_traced(&fig1_cfg(30), &mut rec);
    let analysis = analyze("fig1", rec.events(), &AnalysisConfig::default());
    assert_eq!(analysis.scenarios.len(), 2, "fair + unfair scenarios");
    let fair = &analysis.scenarios[0];
    let unfair = &analysis.scenarios[1];
    assert_eq!(fair.name, "fig1/fair");
    assert_eq!(unfair.name, "fig1/unfair");
    assert!(
        unfair.interleave.overlap_fraction < fair.interleave.overlap_fraction,
        "unfair overlap {} must be strictly below fair overlap {}",
        unfair.interleave.overlap_fraction,
        fair.interleave.overlap_fraction
    );
    // Fair sharing keeps both jobs' phases glued together — heavy overlap.
    assert!(
        fair.interleave.overlap_fraction > 0.5,
        "fair overlap {} unexpectedly low",
        fair.interleave.overlap_fraction
    );
}

/// A JSONL round trip is lossless for analysis purposes: analyzing the
/// replayed trace produces exactly the summary of the live trace.
#[test]
fn replayed_trace_analyzes_identically() {
    let mut rec = BufferRecorder::new();
    fig1::run_traced(&fig1_cfg(10), &mut rec);
    let text = telemetry::export::jsonl(rec.events());
    let replayed = telemetry::parse_jsonl(&text).expect("replay parses");
    assert_eq!(replayed.len(), rec.len());
    let cfg = AnalysisConfig::default();
    let live = analyze("fig1", rec.events(), &cfg).summary();
    let back = analyze("fig1", &replayed, &cfg).summary();
    assert_eq!(live.to_json(), back.to_json());
    assert!(diff(&live, &back, &DiffConfig::default()).is_clean());
}

/// Identical runs diff clean; runs that genuinely differ (more iterations
/// shift the medians' tail behaviour and signal rates) are flagged.
#[test]
fn summary_diff_separates_identical_from_changed_runs() {
    let summarize = |iterations: usize| {
        let mut rec = BufferRecorder::new();
        fig1::run_traced(&fig1_cfg(iterations), &mut rec);
        analyze("fig1", rec.events(), &AnalysisConfig::default()).summary()
    };
    let a = summarize(12);
    let b = summarize(12);
    let changed = summarize(36);
    let cfg = DiffConfig::default();
    assert!(
        diff(&a, &b, &cfg).is_clean(),
        "identical seeds must diff clean:\n{}",
        diff(&a, &b, &cfg).render()
    );
    let d = diff(&a, &changed, &cfg);
    assert!(
        !d.is_clean(),
        "tripling iterations should shift at least one metric"
    );
}
