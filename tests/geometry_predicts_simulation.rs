//! The reproduction's central scientific claim, tested end-to-end: the
//! geometric abstraction's compatibility verdict (pure math on circles)
//! predicts what the DCQCN network simulator actually does when jobs
//! contend under unfairness.

use dcqcn::CcVariant;
use eventsim::Cdf;
use geometry::{solve, SolverConfig};
use mlcc_repro::*;
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use scheduler::analytic_profile;
use simtime::{Bandwidth, Dur};
use workload::{JobSpec, Model};

const LINE: Bandwidth = Bandwidth::from_gbps(50);

fn simulate_pair(a: JobSpec, b: JobSpec, unfair: bool, iters: usize) -> Vec<f64> {
    let variants = if unfair {
        [
            CcVariant::StaticUnfair {
                timer: Dur::from_micros(100),
            },
            CcVariant::Fair,
        ]
    } else {
        [CcVariant::Fair, CcVariant::Fair]
    };
    let jobs = [RateJob::new(a, variants[0]), RateJob::new(b, variants[1])];
    let mut sim = RateSimulator::new(RateSimConfig::default(), &jobs);
    let per_iter = a.iteration_time_at(LINE).max(b.iteration_time_at(LINE));
    assert!(
        sim.run_until_iterations(iters, per_iter * (iters as u64 * 4 + 40)),
        "pair {a} + {b} did not finish"
    );
    (0..2)
        .map(|i| {
            let t: Vec<_> = sim
                .progress(i)
                .iteration_times()
                .into_iter()
                .skip(iters / 3)
                .collect();
            Cdf::from_samples(t).mean().as_secs_f64()
        })
        .collect()
}

/// For every 2-combination of distinct Table 1 job specs, the solver's
/// verdict on analytic profiles must match the simulated outcome: if
/// compatible, unfairness leaves no job slower than fair; if incompatible,
/// contention survives (some job stays well above its solo time).
#[test]
fn verdicts_match_simulation_for_all_pairs() {
    let specs = [
        JobSpec::reference(Model::BertLarge, 8),
        JobSpec::reference(Model::Vgg19, 1200),
        JobSpec::reference(Model::Dlrm, 2000),
        JobSpec::reference(Model::WideResNet50, 800),
        JobSpec::reference(Model::Vgg16, 1400),
        JobSpec::reference(Model::ResNet50, 1600),
    ];
    let grid = Dur::from_micros(2_500);
    let cfg = SolverConfig::default();
    let mut checked = 0;
    for i in 0..specs.len() {
        for j in (i + 1)..specs.len() {
            let (a, b) = (specs[i], specs[j]);
            let profiles = [
                analytic_profile(&a, LINE, grid),
                analytic_profile(&b, LINE, grid),
            ];
            let verdict = solve(&profiles, &cfg).unwrap();
            let fair = simulate_pair(a, b, false, 12);
            let unfair = simulate_pair(a, b, true, 12);
            // "Contention tax": how far above dedicated-network pace a job
            // remains under unfairness.
            let solo = [a, b].map(|s| s.iteration_time_at(LINE).as_secs_f64());
            let max_tax = (0..2)
                .map(|k| unfair[k] / solo[k] - 1.0)
                .fold(0.0f64, f64::max);
            if verdict.is_compatible() {
                // Compatible ⇒ unfairness brings every job to solo pace
                // and nobody ends up slower than fair sharing.
                assert!(
                    max_tax < 0.01,
                    "{a}+{b}: predicted compatible but residual tax {:.1}% \
                     (unfair {unfair:?}, solo {solo:?})",
                    max_tax * 100.0
                );
                for k in 0..2 {
                    assert!(
                        unfair[k] <= fair[k] * 1.03,
                        "{a}+{b}: predicted compatible but job {k} got slower \
                         (fair {:.3}s → unfair {:.3}s)",
                        fair[k],
                        unfair[k]
                    );
                }
            } else {
                // Incompatible ⇒ a measurable tax survives. The rigid
                // geometric model is conservative (simulated jobs adapt
                // their phases elastically, so near-miss pairs pay only a
                // small residual — see EXPERIMENTS.md), but across the
                // calibrated zoo every predicted-incompatible pair retains
                // at least ≈2% on some job; assert half that for margin.
                assert!(
                    max_tax > 0.015,
                    "{a}+{b}: predicted incompatible (overlap {:.1}%) but \
                     simulated tax only {:.2}% (unfair {unfair:?}, solo {solo:?})",
                    verdict.overlap_fraction() * 100.0,
                    max_tax * 100.0
                );
            }
            checked += 1;
        }
    }
    assert_eq!(checked, 15, "all 15 pairs checked");
}
