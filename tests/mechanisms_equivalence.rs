//! §4's three mechanisms — unfair congestion control, switch priorities,
//! and solver-scheduled flow gates — must all deliver the same end state
//! for a compatible pair: every job at dedicated-network pace.

use eventsim::Cdf;
use mlcc_repro::*;
use simtime::Bandwidth;
use workload::{JobSpec, Model};

const LINE: Bandwidth = Bandwidth::from_gbps(50);

#[test]
fn all_three_mechanisms_reach_solo_pace() {
    let iters = 12;
    let warmup = 5;

    // Mechanism i: adaptively unfair congestion control (rate engine).
    let adaptive_cfg = mlcc::experiments::adaptive::AdaptiveConfig {
        iterations: iters,
        warmup,
        ..Default::default()
    };
    let adaptive = mlcc::experiments::adaptive::run(&adaptive_cfg);
    let solo_vgg19 = JobSpec::reference(Model::Vgg19, 1200)
        .iteration_time_at(LINE)
        .as_millis_f64();
    for s in &adaptive.compatible_adaptive {
        assert!(
            (s.median_ms() - solo_vgg19).abs() < solo_vgg19 * 0.02,
            "adaptive CC: {} at {:.1} ms vs solo {solo_vgg19:.1} ms",
            s.label,
            s.median_ms()
        );
    }

    // Mechanisms ii and iii run on the WRN + VGG16 compatible pair.
    let pair = [
        JobSpec::reference(Model::WideResNet50, 800),
        JobSpec::reference(Model::Vgg16, 1400),
    ];
    let solo: Vec<f64> = pair
        .iter()
        .map(|s| s.iteration_time_at(LINE).as_millis_f64())
        .collect();

    // Mechanism ii: switch priority queues (fluid engine).
    let prio = mlcc::experiments::priority::run(&mlcc::experiments::priority::PriorityConfig {
        jobs: pair.to_vec(),
        iterations: iters,
        warmup,
        ..Default::default()
    });
    for (k, s) in prio.prioritized.iter().enumerate() {
        assert!(
            (s.median_ms() - solo[k]).abs() < 2.0,
            "priorities: {} at {:.1} ms vs solo {:.1} ms",
            s.label,
            s.median_ms(),
            solo[k]
        );
    }

    // Mechanism iii: flow scheduling from rotation angles (fluid engine).
    let fs = mlcc::experiments::flowsched::run(&mlcc::experiments::flowsched::FlowschedConfig {
        jobs: pair.to_vec(),
        iterations: iters,
        warmup,
        ..Default::default()
    });
    for (k, s) in fs.scheduled.iter().enumerate() {
        // Gating quantizes the period up to the slot grid (2.5 ms).
        assert!(
            s.median_ms() <= solo[k] + 3.5 && s.median_ms() >= solo[k] - 0.5,
            "flow scheduling: {} at {:.1} ms vs solo {:.1} ms",
            s.label,
            s.median_ms(),
            solo[k]
        );
    }
}

/// The mechanisms must also agree on *how much* they win over fair
/// sharing: all of them remove the full contention tax.
#[test]
fn mechanism_gains_are_substantial_and_similar() {
    let iters = 10;
    let warmup = 4;
    let pair = [
        JobSpec::reference(Model::Vgg19, 1200),
        JobSpec::reference(Model::Vgg19, 1200),
    ];

    let prio = mlcc::experiments::priority::run(&mlcc::experiments::priority::PriorityConfig {
        jobs: pair.to_vec(),
        iterations: iters,
        warmup,
        ..Default::default()
    });
    let fs = mlcc::experiments::flowsched::run(&mlcc::experiments::flowsched::FlowschedConfig {
        jobs: pair.to_vec(),
        iterations: iters,
        warmup,
        ..Default::default()
    });
    // Fair baseline for this pair locks at K + 2C ⇒ the full win is
    // (K+2C)/(K+C) ≈ 1.45× for VGG19(1200).
    for sp in prio.speedups() {
        assert!(sp.0 > 1.35, "priority speedup {sp}");
    }
    for sp in fs.speedups() {
        assert!(sp.0 > 1.35, "flowsched speedup {sp}");
    }
    // Identical-job pair: within each mechanism both jobs gain equally.
    let p = prio.speedups();
    assert!((p[0].0 - p[1].0).abs() < 0.05);
    let f = fs.speedups();
    assert!((f[0].0 - f[1].0).abs() < 0.05);
}

/// Where emergent unfairness plateaus, the solver-driven schedule wins:
/// the Table 1 group-5 trio has only ≈3.5% of rotation slack, too narrow
/// for the DCQCN sliding dynamics to find (static unfairness leaves all
/// three jobs at ≈310 ms), but the geometry solver computes the exact
/// rotation and gating realizes it — every job at its harmonic slot
/// period.
#[test]
fn flow_scheduling_beats_emergent_unfairness_on_tight_fits() {
    let trio = vec![
        JobSpec::reference(Model::Vgg19, 1400),
        JobSpec::reference(Model::Vgg16, 1700),
        JobSpec::reference(Model::ResNet50, 1600),
    ];
    let fs = mlcc::experiments::flowsched::run(&mlcc::experiments::flowsched::FlowschedConfig {
        jobs: trio.clone(),
        iterations: 14,
        warmup: 5,
        ..Default::default()
    });
    // Gated: each job locks to its harmonic slot (287.5 / 287.5 / 143.75 ms).
    let slots = [287.5, 287.5, 143.75];
    for (k, s) in fs.scheduled.iter().enumerate() {
        assert!(
            (s.median_ms() - slots[k]).abs() < 1.5,
            "{}: {:.1} ms vs slot {:.1} ms",
            s.label,
            s.median_ms(),
            slots[k]
        );
    }
    // And the win over ungated max-min is large for the VGG jobs.
    let sp = fs.speedups();
    assert!(sp[0].0 > 1.3 && sp[1].0 > 1.3, "speedups {sp:?}");
    assert!(sp[2].0 > 1.05, "ResNet50 speedup {}", sp[2]);
}

/// Verify iteration-time determinism of a full experiment pipeline.
#[test]
fn experiments_are_deterministic() {
    let run_once = || {
        let cfg = mlcc::experiments::fig2::Fig2Config {
            iterations: 4,
            ..Default::default()
        };
        let r = mlcc::experiments::fig2::run(&cfg);
        (
            r.fair.contended_ms_per_iteration.clone(),
            r.unfair.contended_ms_per_iteration.clone(),
        )
    };
    assert_eq!(run_once(), run_once());
}

/// Sanity: iteration statistics are internally consistent (median between
/// min and max, mean finite, CDF curve monotone).
#[test]
fn stats_integrity_on_real_run() {
    let cfg = mlcc::experiments::fig1::Fig1Config {
        iterations: 8,
        warmup: 2,
        ..Default::default()
    };
    let r = mlcc::experiments::fig1::run(&cfg);
    for sc in [&r.fair, &r.unfair] {
        for s in &sc.stats {
            let cdf = &s.cdf;
            assert!(cdf.min() <= cdf.median() && cdf.median() <= cdf.max());
            let curve = cdf.curve();
            assert!(curve.windows(2).all(|w| w[0].0 <= w[1].0));
            assert_eq!(curve.last().unwrap().1, 1.0);
            let m = Cdf::from_samples(vec![cdf.mean()]).median();
            assert!(m >= cdf.min() && m <= cdf.max());
        }
    }
}
