//! Validates the fluid DCQCN abstraction against the per-packet engine:
//! the two must agree on solo pace, on fair splits, on the direction of
//! the `T` bias, and on iteration times for a full contended scenario.

use dcqcn::CcVariant;
use eventsim::Cdf;
use mlcc_repro::*;
use netsim::packet::{PacketJob, PacketSimConfig, PacketSimulator};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use simtime::{Bandwidth, Dur};
use workload::{JobSpec, Model};

const LINE: Bandwidth = Bandwidth::from_gbps(50);

/// A small job so packet-level runs stay cheap (≈51 ms iterations).
fn small_job() -> JobSpec {
    JobSpec::reference(Model::ResNet50, 400)
}

fn median_ms(times: Vec<Dur>, skip: usize) -> f64 {
    Cdf::from_samples(times.into_iter().skip(skip).collect())
        .median()
        .as_millis_f64()
}

#[test]
fn solo_iteration_times_agree() {
    let spec = small_job();
    let mut pkt = PacketSimulator::new(
        PacketSimConfig::default(),
        &[PacketJob {
            spec,
            variant: CcVariant::Fair,
        }],
    );
    assert!(pkt.run_until_iterations(4, Dur::from_secs(2)));
    let mut fluid = RateSimulator::new(
        RateSimConfig::default(),
        &[RateJob::new(spec, CcVariant::Fair)],
    );
    assert!(fluid.run_until_iterations(4, Dur::from_secs(2)));
    let p = median_ms(pkt.progress(0).iteration_times(), 1);
    let f = median_ms(fluid.progress(0).iteration_times(), 1);
    assert!(
        (p - f).abs() < f * 0.02,
        "solo median: packet {p:.2} ms vs fluid {f:.2} ms"
    );
}

/// Two identical fair jobs, first contended iteration: both engines agree
/// on the physics of the overlap — the first iteration is materially
/// slower than solo and close to the fully-contended K + 2C level.
///
/// Beyond the first iterations the engines *deliberately* diverge: the
/// fluid engine's deterministic marking keeps synchronized fair jobs
/// locked forever (matching the paper's testbed observation), while the
/// packet engine's genuinely random per-packet marking makes the fair
/// lock a random walk that eventually slides apart — the sliding
/// instability is that strong. We assert the initial agreement and the
/// packet engine's eventual drift.
#[test]
fn fair_contention_agrees_initially_then_noise_slides() {
    let spec = small_job();
    let jobs_pkt = [
        PacketJob {
            spec,
            variant: CcVariant::Fair,
        },
        PacketJob {
            spec,
            variant: CcVariant::Fair,
        },
    ];
    let mut pkt = PacketSimulator::new(PacketSimConfig::default(), &jobs_pkt);
    assert!(pkt.run_until_iterations(8, Dur::from_secs(3)));
    let jobs_fluid = [
        RateJob::new(spec, CcVariant::Fair),
        RateJob::new(spec, CcVariant::Fair),
    ];
    let mut fluid = RateSimulator::new(RateSimConfig::default(), &jobs_fluid);
    assert!(fluid.run_until_iterations(8, Dur::from_secs(3)));

    let solo = spec.iteration_time_at(LINE).as_millis_f64();
    let locked = (spec.compute_time() + spec.comm_time_at(LINE) * 2).as_millis_f64();
    for i in 0..2 {
        let p1 = pkt.progress(i).iteration_times()[0].as_millis_f64();
        let f1 = fluid.progress(i).iteration_times()[0].as_millis_f64();
        // The packet engine's contended utilization sits below 100%: with
        // per-packet marking, CNP pressure is stronger than the fluid
        // accumulator's, and the DCQCN sawtooth undershoots — which is
        // *closer to the testbed* (the paper's fair scenario delivers
        // 21+21 of 50 Gbps). First iteration: contended, between the
        // work-conserving locked level and a ~65%-utilization ceiling.
        assert!(
            p1 > locked * 0.95 && p1 < locked * 1.45,
            "packet job {i}: first iteration {p1:.1} ms (solo {solo:.1}, locked {locked:.1})"
        );
        assert!(
            (f1 - locked).abs() < locked * 0.05,
            "fluid job {i}: first iteration {f1:.1} ms vs locked {locked:.1} ms"
        );
    }
    // Packet engine: by iteration 8 the random walk has slid the pair
    // apart (or nearly so) — fair-lock is unstable under real noise.
    for i in 0..2 {
        let late = median_ms(pkt.progress(i).iteration_times(), 5);
        assert!(
            late < locked * 0.95,
            "packet job {i}: still fully locked at {late:.1} ms after 8 iterations"
        );
    }
}

/// The unfairness slide happens at packet granularity too, and converges
/// to dedicated-network pace — agreeing with the fluid engine's steady
/// state.
#[test]
fn unfair_slide_agrees() {
    let spec = small_job();
    let jobs = [
        PacketJob {
            spec,
            variant: CcVariant::StaticUnfair {
                timer: Dur::from_micros(100),
            },
        },
        PacketJob {
            spec,
            variant: CcVariant::Fair,
        },
    ];
    let mut sim = PacketSimulator::new(PacketSimConfig::default(), &jobs);
    assert!(sim.run_until_iterations(10, Dur::from_secs(4)));
    let solo = spec.iteration_time_at(LINE).as_millis_f64();
    for i in 0..2 {
        let steady = median_ms(sim.progress(i).iteration_times(), 4);
        assert!(
            steady < solo * 1.06,
            "packet job {i}: unfair steady state {steady:.1} ms vs solo {solo:.1} ms"
        );
        // The first iteration was contended: the slide had work to do.
        let first = sim.progress(i).iteration_times()[0].as_millis_f64();
        assert!(
            first > solo * 1.1,
            "packet job {i}: first iteration {first:.1} ms already at solo"
        );
    }
}
