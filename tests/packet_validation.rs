//! Validates the fluid DCQCN abstraction against the per-packet engine:
//! the two must agree on solo pace, on fair splits, on the direction of
//! the `T` bias, and on iteration times for a full contended scenario.

use dcqcn::CcVariant;
use eventsim::Cdf;
use mlcc_repro::*;
use netsim::packet::{PacketJob, PacketSimConfig, PacketSimulator};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use simtime::{Bandwidth, Dur};
use workload::{JobSpec, Model};

const LINE: Bandwidth = Bandwidth::from_gbps(50);

/// A small job so packet-level runs stay cheap (≈51 ms iterations).
fn small_job() -> JobSpec {
    JobSpec::reference(Model::ResNet50, 400)
}

fn median_ms(times: Vec<Dur>, skip: usize) -> f64 {
    Cdf::from_samples(times.into_iter().skip(skip).collect())
        .median()
        .as_millis_f64()
}

#[test]
fn solo_iteration_times_agree() {
    let spec = small_job();
    let mut pkt = PacketSimulator::new(
        PacketSimConfig::default(),
        &[PacketJob::new(spec, CcVariant::Fair)],
    );
    assert!(pkt.run_until_iterations(4, Dur::from_secs(2)));
    let mut fluid = RateSimulator::new(
        RateSimConfig::default(),
        &[RateJob::new(spec, CcVariant::Fair)],
    );
    assert!(fluid.run_until_iterations(4, Dur::from_secs(2)));
    let p = median_ms(pkt.progress(0).iteration_times(), 1);
    let f = median_ms(fluid.progress(0).iteration_times(), 1);
    assert!(
        (p - f).abs() < f * 0.02,
        "solo median: packet {p:.2} ms vs fluid {f:.2} ms"
    );
}

/// Two identical fair jobs, first contended iteration: both engines agree
/// on the physics of the overlap — the first iteration is materially
/// slower than solo and close to the fully-contended K + 2C level.
///
/// Beyond the first iterations the engines *deliberately* diverge: the
/// fluid engine's deterministic marking keeps synchronized fair jobs
/// locked forever (matching the paper's testbed observation), while the
/// packet engine's genuinely random per-packet marking makes the fair
/// lock a random walk that eventually slides apart — the sliding
/// instability is that strong. We assert the initial agreement and the
/// packet engine's eventual drift.
#[test]
fn fair_contention_agrees_initially_then_noise_slides() {
    let spec = small_job();
    let jobs_pkt = [
        PacketJob::new(spec, CcVariant::Fair),
        PacketJob::new(spec, CcVariant::Fair),
    ];
    let mut pkt = PacketSimulator::new(PacketSimConfig::default(), &jobs_pkt);
    assert!(pkt.run_until_iterations(8, Dur::from_secs(3)));
    let jobs_fluid = [
        RateJob::new(spec, CcVariant::Fair),
        RateJob::new(spec, CcVariant::Fair),
    ];
    let mut fluid = RateSimulator::new(RateSimConfig::default(), &jobs_fluid);
    assert!(fluid.run_until_iterations(8, Dur::from_secs(3)));

    let solo = spec.iteration_time_at(LINE).as_millis_f64();
    let locked = (spec.compute_time() + spec.comm_time_at(LINE) * 2).as_millis_f64();
    for i in 0..2 {
        let p1 = pkt.progress(i).iteration_times()[0].as_millis_f64();
        let f1 = fluid.progress(i).iteration_times()[0].as_millis_f64();
        // The packet engine's contended utilization sits below 100%: with
        // per-packet marking, CNP pressure is stronger than the fluid
        // accumulator's, and the DCQCN sawtooth undershoots — which is
        // *closer to the testbed* (the paper's fair scenario delivers
        // 21+21 of 50 Gbps). First iteration: contended, between the
        // work-conserving locked level and a ~65%-utilization ceiling.
        assert!(
            p1 > locked * 0.95 && p1 < locked * 1.45,
            "packet job {i}: first iteration {p1:.1} ms (solo {solo:.1}, locked {locked:.1})"
        );
        assert!(
            (f1 - locked).abs() < locked * 0.05,
            "fluid job {i}: first iteration {f1:.1} ms vs locked {locked:.1} ms"
        );
    }
    // Packet engine: by iteration 8 the random walk has slid the pair
    // apart (or nearly so) — fair-lock is unstable under real noise.
    for i in 0..2 {
        let late = median_ms(pkt.progress(i).iteration_times(), 5);
        assert!(
            late < locked * 0.95,
            "packet job {i}: still fully locked at {late:.1} ms after 8 iterations"
        );
    }
}

/// Paper-scale cross-engine validation: a Table 1-style four-job mix —
/// VGG19(1400) and WideResNet-50 plus two large-batch ResNet-50s, all
/// tuned to the same ≈285 ms period — placed in a staggered rotation the
/// way the paper's compatible groups run: communication phases laid out
/// end-to-end (total occupancy ≈76% of the link) so every job trains at
/// dedicated-network pace despite sharing one bottleneck. The paper's
/// core claim is that such compatible placements cost ≈nothing
/// (Table 1's ≈1.0 slowdowns); here both engines must reproduce it and
/// agree with each other within the existing cross-engine bound.
///
/// The rotation is expressed with `start_offset` (harmonic periods keep
/// the phases disjoint once started disjoint). A free-running slide from
/// synchronized starts would not do: four-way persistent contention is
/// exactly the regime where the engines *deliberately* diverge (random
/// vs. accumulator marking — see `fair_contention_agrees_initially_...`),
/// and a contiguous 119 ms VGG19 phase cannot fit in the gaps two
/// ResNet-50s leave in every 142 ms window anyway.
///
/// Scale: ≈20 GB of gradients ≈ 21 M packet events over 8+ iterations
/// per job. Per-packet simulation (`train_packets = 1`) is an order of
/// magnitude slower in wall-clock (and 64× the events) and blows the
/// unit-test budget, so the packet engine runs 64-packet trains and the
/// fluid engine adaptive stepping — the configuration
/// this PR exists to make affordable (`scripts/check.sh` keeps a
/// wall-clock budget on this test).
#[test]
fn paper_scale_mix_agrees_with_batching() {
    // All periods ≈285 ms: VGG19 1400 is straight from Table 1; the other
    // batches are chosen so compute + solo-comm hits the same period
    // (harmonic periods are the paper's rotation-feasibility condition).
    let mix: [(JobSpec, CcVariant, Dur); 4] = [
        (
            JobSpec::reference(Model::Vgg19, 1400),
            CcVariant::Fair,
            // compute 166.3 ms; comm occupies [200.0, 318.7) of the cycle
            Dur::from_micros(33_680),
        ),
        (
            JobSpec::reference(Model::WideResNet50, 919),
            CcVariant::StaticUnfair {
                timer: Dur::from_micros(70),
            },
            // compute 229.8 ms; comm occupies [335.7, 390.8)
            Dur::from_micros(105_970),
        ),
        (
            JobSpec::reference(Model::ResNet50, 3480),
            CcVariant::StaticUnfair {
                timer: Dur::from_micros(100),
            },
            // compute 264.1 ms; comm occupies [407.8, 428.7)
            Dur::from_micros(143_630),
        ),
        (
            JobSpec::reference(Model::ResNet50, 3480),
            CcVariant::StaticUnfair {
                timer: Dur::from_micros(130),
            },
            // compute 264.1 ms; comm occupies [445.7, 466.7)
            Dur::from_micros(181_590),
        ),
    ];
    let total_fraction: f64 = mix.iter().map(|(s, _, _)| s.comm_fraction_at(LINE)).sum();
    assert!(
        total_fraction > 0.7 && total_fraction < 0.85,
        "rotation should be busy but feasible, got {total_fraction:.2}"
    );

    let pkt_jobs: Vec<PacketJob> = mix
        .iter()
        .map(|&(spec, variant, start_offset)| PacketJob {
            start_offset,
            ..PacketJob::new(spec, variant)
        })
        .collect();
    let mut pkt = PacketSimulator::new(
        PacketSimConfig {
            train_packets: 64,
            ..PacketSimConfig::default()
        },
        &pkt_jobs,
    );
    assert!(
        pkt.run_until_iterations(8, Dur::from_secs(8)),
        "packet engine stalled before 8 iterations"
    );

    let fluid_jobs: Vec<RateJob> = mix
        .iter()
        .map(|&(spec, variant, start_offset)| RateJob {
            start_offset,
            ..RateJob::new(spec, variant)
        })
        .collect();
    let mut fluid = RateSimulator::new(
        RateSimConfig {
            adaptive_step: true,
            ..RateSimConfig::default()
        },
        &fluid_jobs,
    );
    assert!(
        fluid.run_until_iterations(8, Dur::from_secs(8)),
        "fluid engine stalled before 8 iterations"
    );

    for (i, (spec, _, _)) in mix.iter().enumerate() {
        let solo = spec.iteration_time_at(LINE).as_millis_f64();
        let p = median_ms(pkt.progress(i).iteration_times(), 2);
        let f = median_ms(fluid.progress(i).iteration_times(), 2);
        assert!(
            (p - f).abs() < f * 0.06,
            "job {i} ({}): packet {p:.1} ms vs fluid {f:.1} ms",
            spec.model.name()
        );
        // The compatible rotation holds: both engines keep every job at
        // ≈dedicated pace (Table 1's ≈1.0 slowdown).
        assert!(
            p < solo * 1.06 && f < solo * 1.06,
            "job {i} ({}): rotation broke — packet {p:.1} / fluid {f:.1} ms vs solo {solo:.1} ms",
            spec.model.name()
        );
    }
}

/// The unfairness slide happens at packet granularity too, and converges
/// to dedicated-network pace — agreeing with the fluid engine's steady
/// state.
#[test]
fn unfair_slide_agrees() {
    let spec = small_job();
    let jobs = [
        PacketJob::new(
            spec,
            CcVariant::StaticUnfair {
                timer: Dur::from_micros(100),
            },
        ),
        PacketJob::new(spec, CcVariant::Fair),
    ];
    let mut sim = PacketSimulator::new(PacketSimConfig::default(), &jobs);
    assert!(sim.run_until_iterations(10, Dur::from_secs(4)));
    let solo = spec.iteration_time_at(LINE).as_millis_f64();
    for i in 0..2 {
        let steady = median_ms(sim.progress(i).iteration_times(), 4);
        assert!(
            steady < solo * 1.06,
            "packet job {i}: unfair steady state {steady:.1} ms vs solo {solo:.1} ms"
        );
        // The first iteration was contended: the slide had work to do.
        let first = sim.progress(i).iteration_times()[0].as_millis_f64();
        assert!(
            first > solo * 1.1,
            "packet job {i}: first iteration {first:.1} ms already at solo"
        );
    }
}
