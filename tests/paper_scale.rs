//! Paper-scale runs, ignored by default (minutes of wall clock):
//!
//! ```sh
//! cargo test --release --test paper_scale -- --ignored
//! ```

use dcqcn::CcVariant;
use mlcc_repro::*;
use simtime::Dur;
use workload::{JobSpec, Model};

/// Fig. 1d at the paper's full scale: 1000 iterations per scenario.
/// The whole CDF (not just the median) must improve under unfairness,
/// and the steady state must hold for the entire run — no late-run
/// re-collision of the phases.
#[test]
#[ignore = "simulates ~2 × 300 s of cluster time; run with --ignored"]
fn fig1d_full_1000_iterations() {
    let cfg = mlcc::experiments::fig1::Fig1Config {
        iterations: 1000,
        warmup: 10,
        ..Default::default()
    };
    let r = mlcc::experiments::fig1::run(&cfg);
    for (i, (f, u)) in r.fair.stats.iter().zip(&r.unfair.stats).enumerate() {
        for p in [10.0, 50.0, 90.0, 99.0] {
            let fv = f.cdf.percentile(p).as_millis_f64();
            let uv = u.cdf.percentile(p).as_millis_f64();
            assert!(
                uv < fv,
                "job {i}: p{p} did not improve ({fv:.1} → {uv:.1} ms)"
            );
        }
        // Steady state: the unfair p99 is within 2% of the unfair median —
        // once slid apart, the jobs never re-collide.
        let med = u.cdf.median().as_millis_f64();
        let p99 = u.cdf.percentile(99.0).as_millis_f64();
        assert!(
            p99 < med * 1.02,
            "job {i}: unfair tail unstable (median {med:.1}, p99 {p99:.1})"
        );
    }
    let sp = r.speedups();
    assert!(sp.iter().all(|s| s.0 > 1.3), "speedups {sp:?}");
}

/// The DLRM pair at scale: the paper's strongest Table 1 row, 200
/// iterations (≈ 2 × 260 s simulated).
#[test]
#[ignore = "simulates ~2 × 260 s of cluster time; run with --ignored"]
fn dlrm_pair_long_run() {
    let spec = JobSpec::reference(Model::Dlrm, 2000);
    let run = |variants: [CcVariant; 2]| {
        let jobs = [
            netsim::rate::RateJob::new(spec, variants[0]),
            netsim::rate::RateJob::new(spec, variants[1]),
        ];
        let mut sim =
            netsim::rate::RateSimulator::new(netsim::rate::RateSimConfig::default(), &jobs);
        assert!(sim.run_until_iterations(200, Dur::from_secs(400)));
        (0..2)
            .map(|i| {
                let t: Vec<_> = sim
                    .progress(i)
                    .iteration_times()
                    .into_iter()
                    .skip(10)
                    .collect();
                eventsim::Cdf::from_samples(t).mean().as_millis_f64()
            })
            .collect::<Vec<_>>()
    };
    let fair = run([CcVariant::Fair, CcVariant::Fair]);
    let unfair = run([
        CcVariant::StaticUnfair {
            timer: Dur::from_micros(100),
        },
        CcVariant::Fair,
    ]);
    // Paper: 1301/1300 ms fair → 1001/1019 ms unfair.
    for k in 0..2 {
        assert!(
            (fair[k] - 1300.0).abs() < 15.0,
            "fair[{k}] = {:.1}",
            fair[k]
        );
        assert!(
            (unfair[k] - 1000.0).abs() < 15.0,
            "unfair[{k}] = {:.1}",
            unfair[k]
        );
    }
}
