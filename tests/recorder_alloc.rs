//! Asserts the disabled telemetry path is genuinely zero-cost: driving a
//! `NoopRecorder` — or a `TapRecorder<NoopRecorder>` with no live sink
//! installed — through hundreds of thousands of instrumentation calls
//! performs **zero heap allocations**. A counting global allocator
//! measures, so regressions that sneak a buffer or a clone into the
//! disabled path fail loudly rather than silently taxing every
//! unobserved simulation.
//!
//! This file holds exactly one `#[test]` so no sibling test thread can
//! allocate concurrently and pollute the counter.

use simtime::Time;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use telemetry::live::{self, LiveConfig};
use telemetry::{BufferRecorder, CcState, Event, NoopRecorder, Recorder, TapRecorder};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Drives every `Recorder` entry point hard with allocation-free event
/// payloads (no `Scenario`/`JobPath`, whose construction itself heaps).
fn hammer<R: Recorder>(rec: &mut R, rounds: u64) -> u64 {
    let mut sink = 0u64;
    for i in 0..rounds {
        let at = Time::from_nanos(i);
        rec.record(
            at,
            Event::EcnMark {
                flow: (i % 7) as u32,
            },
        );
        rec.record(
            at,
            Event::QueueDepth {
                link: (i % 3) as u32,
                bytes: i as f64,
            },
        );
        rec.record(
            at,
            Event::RateChange {
                flow: (i % 7) as u32,
                bps: 1e9 + i as f64,
                state: CcState::Cut,
            },
        );
        rec.count("hammer.events", 3);
        rec.span("hammer", Duration::from_nanos(i), 3);
        sink = sink.wrapping_add(i);
    }
    sink
}

/// Minimum allocation count over several runs of `f`.
///
/// The libtest harness keeps service threads alive that allocate at
/// unpredictable moments; a single measurement window can catch one.
/// A path that itself allocates does so in *every* window, so the
/// minimum over a handful of windows isolates the path's own cost.
fn min_allocations_during(mut f: impl FnMut()) -> u64 {
    (0..10)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            f();
            ALLOCATIONS.load(Ordering::SeqCst) - before
        })
        .min()
        .unwrap()
}

#[test]
fn disabled_recorder_paths_are_allocation_free() {
    const ROUNDS: u64 = 100_000;

    // Warm up lazy runtime structures (stdout locks, TLS) outside the
    // measured windows.
    let mut warm = NoopRecorder;
    std::hint::black_box(hammer(&mut warm, 16));

    // 1. The pure no-op recorder: 500k instrumentation calls, 0 allocs.
    let mut noop = NoopRecorder;
    let allocs = min_allocations_during(|| {
        hammer(&mut noop, ROUNDS);
    });
    assert_eq!(allocs, 0, "NoopRecorder allocated {allocs} times");

    // 2. A live tap over a disabled recorder with NO sink installed:
    // construction finds no sink, so the mirror arm is inert and the
    // whole path must stay allocation-free too.
    assert!(!live::is_installed());
    let allocs = min_allocations_during(|| {
        let mut tap = TapRecorder::new(NoopRecorder);
        hammer(&mut tap, ROUNDS);
        assert!(!tap.is_live());
    });
    assert_eq!(
        allocs, 0,
        "sink-less TapRecorder<NoopRecorder> allocated {allocs} times"
    );

    // 3. Functional contrast: with a sink installed and a buffering
    // recorder, the same traffic IS recorded and mirrored — the zero
    // above is a property of the disabled path, not of the hammer.
    let mut handle = live::install(LiveConfig::default());
    let mut tap = TapRecorder::new(BufferRecorder::new());
    assert!(tap.is_live());
    hammer(&mut tap, 100);
    let inner = tap.into_inner();
    assert_eq!(inner.len(), 300);
    live::uninstall();
    let (_, disconnected) = handle.poll();
    assert!(disconnected);
    assert_eq!(handle.total_events(), 300);
}
