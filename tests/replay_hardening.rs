//! Property tests hardening `telemetry::parse_jsonl` (satellite of the
//! observability PR): arbitrary event streams round-trip exactly, and
//! arbitrarily mangled exports — truncated mid-line, flipped characters,
//! injected junk, duplicated lines — always produce a typed
//! `ReplayError`, never a panic. The flight-recorder dump and `--alerts`
//! context share this exporter/parser pair, so its totality is what lets
//! `mlcc-repro report` ingest any file a crashed run left behind.

use proptest::prelude::*;
use telemetry::export::jsonl;
use telemetry::replay::ReplayErrorKind;
use telemetry::{parse_jsonl, CcState, Event, Phase, TimedEvent};

/// Deterministically decodes three random words into one event, covering
/// every `Event` variant including string-carrying and array-carrying
/// ones (scenario names get quotes/backslashes to exercise escaping).
fn event_from(tag: u64, a: u64, b: u64) -> Event {
    let flow = (a % 17) as u32;
    let job = (a % 5) as u32;
    match tag % 13 {
        0 => Event::QueueDepth {
            link: flow,
            bytes: (b % 1_000_000) as f64 + 0.5,
        },
        1 => Event::EcnMark { flow },
        2 => Event::CnpSent { flow },
        3 => Event::CnpReceived { flow },
        4 => Event::RateChange {
            flow,
            bps: (b % 100) as f64 * 1e9 + 1.0,
            state: match b % 7 {
                0 => CcState::Restart,
                1 => CcState::Cut,
                2 => CcState::FastRecovery,
                3 => CcState::AdditiveIncrease,
                4 => CcState::HyperIncrease,
                5 => CcState::Alloc,
                _ => CcState::Delay,
            },
        },
        5 => Event::PhaseEnter {
            job,
            phase: if b.is_multiple_of(2) {
                Phase::Compute
            } else {
                Phase::Communicate
            },
            iteration: b % 1000,
        },
        6 => Event::PhaseExit {
            job,
            phase: if b.is_multiple_of(2) {
                Phase::Compute
            } else {
                Phase::Communicate
            },
            iteration: b % 1000,
        },
        7 => Event::SolverIteration {
            component: "fluid",
            index: b,
        },
        8 => Event::GateRelease { job },
        9 => Event::Scenario {
            name: format!("sc\\en\"ario-{}", b % 4),
        },
        10 => Event::JobPath {
            job,
            links: (0..(b % 4)).map(|l| l as u32).collect(),
        },
        11 => Event::LinkCapacity {
            link: flow,
            fraction: (b % 100) as f64 / 100.0,
        },
        _ => Event::JobDepart { job },
    }
}

fn stream_from(words: &[u64]) -> Vec<TimedEvent> {
    words
        .chunks_exact(3)
        .enumerate()
        .map(|(i, w)| TimedEvent {
            at: simtime::Time::from_nanos(i as u64 * 1000 + w[0] % 1000),
            event: event_from(w[0], w[1], w[2]),
        })
        .collect()
}

fn words() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1_000_000, 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any exported stream parses back to exactly the same events.
    #[test]
    fn export_round_trips_exactly(words in words()) {
        let events = stream_from(&words);
        let text = jsonl(&events);
        let back = parse_jsonl(&text).expect("well-formed export must parse");
        prop_assert_eq!(back, events);
    }

    /// Truncating an export anywhere — even mid-line, mid-string — never
    /// panics: it either still parses (cut on a line boundary) or yields
    /// a typed error.
    #[test]
    fn truncated_exports_never_panic(words in words(), cut in 0usize..4000) {
        let events = stream_from(&words);
        let text = jsonl(&events);
        let cut = text
            .char_indices()
            .map(|(i, _)| i)
            .chain([text.len()])
            .nth(cut.min(text.chars().count()))
            .unwrap_or(text.len());
        let _ = parse_jsonl(&text[..cut]);
    }

    /// Flipping one character never panics, and when it breaks the
    /// stream the error names the mangled line.
    #[test]
    fn flipped_characters_never_panic(
        words in words(),
        pos in 0usize..4000,
        replacement in 0u64..5,
    ) {
        let events = stream_from(&words);
        let text = jsonl(&events);
        prop_assume!(!text.is_empty());
        let chars: Vec<char> = text.chars().collect();
        let pos = pos % chars.len();
        let mut mangled: String = chars[..pos].iter().collect();
        mangled.push(['X', '{', '"', '9', '\\'][replacement as usize]);
        mangled.extend(&chars[pos + 1..]);
        if let Err(e) = parse_jsonl(&mangled) {
            let line_of_pos = text[..pos].matches('\n').count() + 1;
            prop_assert!(
                e.line >= 1 && e.line <= line_of_pos.max(1),
                "error line {} past mangled line {line_of_pos}",
                e.line
            );
        }
    }

    /// Injecting a junk line always yields an error (junk is never a
    /// valid event object), with the error pointing at or before it.
    #[test]
    fn injected_junk_lines_are_rejected(words in words(), junk_at in 0usize..130) {
        let events = stream_from(&words);
        let text = jsonl(&events);
        let mut lines: Vec<&str> = text.lines().collect();
        let junk_at = junk_at.min(lines.len());
        lines.insert(junk_at, "{\"seq\":0,\"garbage\":true}");
        let err = parse_jsonl(&lines.join("\n")).expect_err("junk must not parse");
        prop_assert!(err.line <= junk_at + 1, "line {} after junk at {}", err.line, junk_at + 1);
    }

    /// Duplicating any line breaks strict seq monotonicity and is
    /// reported as `BadSeq` at the duplicate.
    #[test]
    fn duplicated_lines_break_seq_monotonicity(words in words(), dup in 0usize..120) {
        let events = stream_from(&words);
        prop_assume!(!events.is_empty());
        let text = jsonl(&events);
        let mut lines: Vec<&str> = text.lines().collect();
        let dup = dup % lines.len();
        lines.insert(dup + 1, lines[dup]);
        let err = parse_jsonl(&lines.join("\n")).expect_err("duplicate seq must not parse");
        prop_assert_eq!(err.kind, ReplayErrorKind::BadSeq);
        prop_assert_eq!(err.line, dup + 2);
    }
}

#[test]
fn empty_and_whitespace_inputs_parse_to_nothing() {
    assert_eq!(parse_jsonl("").unwrap(), vec![]);
    assert_eq!(parse_jsonl("\n\n  \n").unwrap(), vec![]);
}
