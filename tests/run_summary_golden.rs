//! Golden-summary regression gate: the fig1 reproduction (fair + unfair,
//! pinned seed) must keep producing the metrics committed under
//! `tests/goldens/`, within the diff tolerance. Catches silent behavioural
//! drift in the simulators, the analyzers, and the summary serialization
//! in one shot.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! cargo run -- fig1 --iterations 20 --summary tests/goldens/fig1.json
//! ```

use diagnostics::{analyze, diff, AnalysisConfig, DiffConfig, RunSummary};
use faults::ChaosConfig;
use mlcc::experiments::fig1::{self, Fig1Config};
use mlcc_repro::*;
use telemetry::BufferRecorder;

#[test]
fn fig1_summary_matches_committed_golden() {
    let golden = RunSummary::from_json(include_str!("goldens/fig1.json")).expect("golden parses");
    // Exactly what `mlcc-repro fig1 --iterations 20 --summary …` runs.
    let cfg = Fig1Config {
        iterations: 20,
        ..Fig1Config::default()
    };
    let mut rec = BufferRecorder::new();
    fig1::run_traced(&cfg, &mut rec);
    let current = analyze("fig1", rec.events(), &AnalysisConfig::default()).summary();

    assert_eq!(current.name, golden.name);
    let report = diff(&golden, &current, &DiffConfig::default());
    assert!(
        report.is_clean(),
        "fig1 drifted from the golden summary ({} compared):\n{}\
         \nIf the change is intentional, regenerate with:\n  \
         cargo run -- fig1 --iterations 20 --summary tests/goldens/fig1.json",
        report.compared,
        report.render()
    );
    // The golden itself must keep exercising both scenarios.
    assert!(golden.metrics.keys().any(|k| k.starts_with("fig1_fair.")));
    assert!(golden.metrics.keys().any(|k| k.starts_with("fig1_unfair.")));
}

/// Same gate for a *perturbed* run: fig1 under the `stragglers` chaos
/// profile at a pinned seed must keep producing the committed summary.
/// Chaos is seeded and deterministic, so a perturbed run regresses just
/// like a quiet one — this pins the fault-injection plumbing itself
/// (keyed noise draws, schedule compilation, engine realization) in
/// addition to the simulators.
#[test]
fn fig1_chaos_summary_matches_committed_golden() {
    let golden =
        RunSummary::from_json(include_str!("goldens/fig1_chaos.json")).expect("golden parses");
    // Exactly what `mlcc-repro fig1 --iterations 20 --chaos stragglers
    // --chaos-seed 7 --summary …` runs.
    let cfg = Fig1Config {
        iterations: 20,
        chaos: ChaosConfig {
            seed: 7,
            ..ChaosConfig::profile("stragglers").expect("builtin profile")
        },
        ..Fig1Config::default()
    };
    let mut rec = BufferRecorder::new();
    fig1::run_traced(&cfg, &mut rec);
    let current = analyze("fig1", rec.events(), &AnalysisConfig::default()).summary();

    assert_eq!(current.name, golden.name);
    let report = diff(&golden, &current, &DiffConfig::default());
    assert!(
        report.is_clean(),
        "chaotic fig1 drifted from the golden summary ({} compared):\n{}\
         \nIf the change is intentional, regenerate with:\n  \
         cargo run -- fig1 --iterations 20 --chaos stragglers --chaos-seed 7 \
         --summary tests/goldens/fig1_chaos.json",
        report.compared,
        report.render()
    );
    // The perturbed golden must differ from the quiet one somewhere —
    // otherwise the chaos plumbing silently stopped perturbing.
    let quiet = RunSummary::from_json(include_str!("goldens/fig1.json")).expect("golden parses");
    let drift = diff(&quiet, &golden, &DiffConfig::default());
    assert!(
        !drift.is_clean(),
        "stragglers golden is identical to the quiet golden — chaos had no effect"
    );
}

/// Same gate for the congestion-control zoo: the seven-cell variant
/// matrix at a pinned iteration count must keep producing the committed
/// summary. This pins the `CcAlgorithm` dispatch path for every variant
/// family (wrapped MLTCP/policy controllers included) in one diff.
#[test]
fn variants_summary_matches_committed_golden() {
    let golden =
        RunSummary::from_json(include_str!("goldens/variants.json")).expect("golden parses");
    // Exactly what `mlcc-repro variants --iterations 12 --summary …` runs
    // (minus the CLI-only `config.hash` metric).
    let mut cfg = mlcc::experiments::variants::VariantsConfig::default();
    cfg.fig1.iterations = 12;
    let mut rec = BufferRecorder::new();
    mlcc::experiments::variants::run_traced(&cfg, &mut rec);
    let current = analyze("variants", rec.events(), &AnalysisConfig::default()).summary();

    assert_eq!(current.name, golden.name);
    let report = diff(&golden, &current, &DiffConfig::default());
    assert!(
        report.is_clean(),
        "variants drifted from the golden summary ({} compared):\n{}\
         \nIf the change is intentional, regenerate with:\n  \
         cargo run -- variants --iterations 12 --summary tests/goldens/variants.json\n  \
         (then delete the \"config.hash\" line)",
        report.compared,
        report.render()
    );
    // The golden must keep exercising every zoo cell.
    for cell in [
        "variants_fair.",
        "variants_static-unfair.",
        "variants_adaptive.",
        "variants_mltcp.",
        "variants_policy-prop.",
        "variants_policy-decay.",
        "variants_swift.",
    ] {
        assert!(
            golden.metrics.keys().any(|k| k.starts_with(cell)),
            "golden lost cell {cell}"
        );
    }
}
