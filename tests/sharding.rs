//! Differential guarantees of sharded execution: for every engine, across
//! seeds and chaos profiles,
//!
//! ```text
//! sharded(N threads)  ≡  sharded(1 thread)        (byte level)
//! sharded(any N)      ≡  unsharded                (results level)
//! sharded collapse    ≡  unsharded                (byte level, one component)
//! epoch-bounded       ≡  unbounded                (byte level)
//! fork_at + sharded   ≡  sharded                  (byte level)
//! ```
//!
//! The byte-level cross-thread property is the contract behind `--shards
//! N`: the shard plan is a pure function of the topology, worker threads
//! only change wall clock. The results-level property pins the sharded
//! decomposition to the global simulation it replaces (the merged streams
//! differ only in per-shard solver bookkeeping, so equality there is on
//! iteration statistics, not bytes — except in the one-component collapse
//! case, where the shard *is* the global simulation and bytes must match).

use faults::ChaosConfig;
use mlcc::experiments::shard::{
    build_fluid, build_packet, run_fluid_sharded, run_fluid_unsharded, run_packet_sharded,
    ShardConfig,
};
use mlcc_repro::*;
use netsim::packet::PacketSimulator;
use netsim::shard::run_epochs;
use proptest::prelude::*;
use simtime::Dur;
use telemetry::{BufferRecorder, ForkableRecorder, RemapRecorder};

/// Arrival-free builtin profiles: every engine can snapshot and every
/// scenario completes within the small test budgets.
const PROFILES: [&str; 4] = ["none", "stragglers", "links", "signal"];

fn chaos(profile: &str, seed: u64) -> ChaosConfig {
    let base = ChaosConfig::profile(profile).expect("builtin profile");
    ChaosConfig { seed, ..base }
}

fn small(profile: &str, seed: u64, groups: usize, jobs_per_group: usize) -> ShardConfig {
    ShardConfig {
        groups,
        jobs_per_group,
        chaos: chaos(profile, seed),
        ..ShardConfig::small()
    }
}

/// One merged fluid + packet stream at the given worker count.
fn merged_stream(cfg: &ShardConfig, threads: usize) -> BufferRecorder {
    let fluid = build_fluid(cfg);
    let packet = build_packet(cfg);
    let mut rec = BufferRecorder::new();
    run_fluid_sharded(&fluid, cfg, &mut rec, threads);
    run_packet_sharded(&packet, cfg, &mut rec, threads);
    rec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// sharded(N) ≡ sharded(1) at the byte level, across seeds × chaos
    /// profiles × shapes, for the fluid and packet engines merged into one
    /// stream.
    #[test]
    fn thread_count_is_invisible_in_merged_streams(
        seed in 1u64..64,
        profile in 0usize..PROFILES.len(),
        groups in 1usize..4,
        jobs_per_group in 1usize..4,
        threads in 2usize..6,
    ) {
        let cfg = small(PROFILES[profile], seed, groups, jobs_per_group);
        let one = merged_stream(&cfg, 1);
        let many = merged_stream(&cfg, threads);
        prop_assert!(!one.events().is_empty());
        prop_assert_eq!(one.events(), many.events());
        prop_assert_eq!(one.counts(), many.counts());
    }
}

/// sharded ≡ unsharded at the results level (fluid engine), across chaos
/// profiles: every job's per-iteration times agree between the global
/// simulation and the per-component decomposition.
#[test]
fn sharded_matches_unsharded_stats_across_profiles() {
    for profile in PROFILES {
        let cfg = small(profile, 11, 3, 2);
        let scn = build_fluid(&cfg);
        let (base, _) = run_fluid_unsharded(&scn, &cfg, telemetry::NoopRecorder);
        let mut rec = BufferRecorder::new();
        let sharded = run_fluid_sharded(&scn, &cfg, &mut rec, 3);
        assert_eq!(base.completed, sharded.completed, "profile {profile}");
        for (j, (a, b)) in base.stats.iter().zip(&sharded.stats).enumerate() {
            let (ma, mb) = (a.median_ms(), b.median_ms());
            assert!(
                (ma - mb).abs() <= 1e-9 * ma.abs().max(1.0),
                "{profile} job {j}: unsharded {ma} ms vs sharded {mb} ms"
            );
        }
    }
}

/// The collapse case, fluid engine: all jobs share one bottleneck, the
/// plan degenerates to a single component, and the sharded run — one
/// shard, identity remap, single-fork merge — reproduces the plain
/// unsharded recording byte for byte.
#[test]
fn fluid_collapse_is_byte_identical_to_unsharded() {
    let cfg = small("none", 1, 1, 4);
    let mut scn = build_fluid(&cfg);
    // Zero offsets keep construction-time events in time order, so the
    // ordered merge is the identity on the single fork.
    for job in &mut scn.jobs {
        job.start_offset = Dur::ZERO;
    }
    assert_eq!(scn.plan.num_components(), 1);
    let (_, direct) = run_fluid_unsharded(&scn, &cfg, BufferRecorder::new());
    for threads in [1, 4] {
        let mut merged = BufferRecorder::new();
        run_fluid_sharded(&scn, &cfg, &mut merged, threads);
        assert_eq!(direct.events(), merged.events(), "{threads} thread(s)");
    }
}

/// The collapse case, packet engine: a one-group scenario sharded through
/// the executor equals driving the one simulator directly.
#[test]
fn packet_collapse_is_byte_identical_to_direct_run() {
    let cfg = small("none", 1, 1, 1);
    let mut scn = build_packet(&cfg);
    for job in &mut scn.groups[0] {
        job.start_offset = Dur::ZERO;
    }
    assert_eq!(scn.plan.num_components(), 1);
    let mut direct_sim = PacketSimulator::with_recorder(
        scn.configs[0].clone(),
        &scn.groups[0],
        BufferRecorder::fork(),
    );
    direct_sim.run_until_iterations(cfg.iterations, cfg.budget);
    let mut direct = BufferRecorder::new();
    direct.join(direct_sim.into_recorder());
    let mut merged = BufferRecorder::new();
    run_packet_sharded(&scn, &cfg, &mut merged, 4);
    assert!(!direct.events().is_empty());
    assert_eq!(direct.events(), merged.events());
}

/// Lockstep epochs are a pure executor knob for link-disjoint fluid
/// shards: bounded epochs at any size, with any worker count, merge to the
/// stream an unbounded serial pass produces.
#[test]
fn fluid_epoch_bound_is_invisible() {
    let cfg = small("stragglers", 5, 3, 2);
    let scn = build_fluid(&cfg);
    let shards = || {
        scn.plan
            .components()
            .iter()
            .map(|comp| {
                let jobs: Vec<_> = comp.iter().map(|&j| scn.jobs[j].clone()).collect();
                netsim::fluid::FluidSimulator::with_recorder(
                    &scn.topology,
                    scn.fluid_cfg.clone(),
                    &jobs,
                    RemapRecorder::new(
                        BufferRecorder::fork(),
                        comp.iter().map(|&j| j as u32).collect(),
                        None,
                    ),
                )
            })
            .collect::<Vec<_>>()
    };
    let mut streams = Vec::new();
    for (threads, epoch) in [
        (1, None),
        (3, Some(Dur::from_millis(5))),
        (2, Some(Dur::from_millis(17))),
    ] {
        let mut sims = shards();
        run_epochs(&mut sims, threads, cfg.iterations, cfg.budget, epoch);
        let mut rec = BufferRecorder::new();
        rec.join_merged(
            sims.into_iter()
                .map(|s| s.into_recorder().into_inner())
                .collect(),
        );
        streams.push(rec);
    }
    assert!(!streams[0].events().is_empty());
    for s in &streams[1..] {
        assert_eq!(
            s.events(),
            streams[0].events(),
            "epoch policy leaked into output"
        );
    }
}

/// `--fork-at` composes with sharding: snapshotting and restoring every
/// shard at the barrier leaves the merged stream untouched, quiet or under
/// chaos.
#[test]
fn fork_at_composes_with_sharding_under_chaos() {
    for profile in ["none", "stragglers", "links"] {
        let cfg = small(profile, 23, 2, 2);
        let straight = merged_stream(&cfg, 2);
        let forked_cfg = ShardConfig {
            fork_at: Some(Dur::from_millis(15)),
            ..cfg
        };
        let forked = merged_stream(&forked_cfg, 2);
        assert!(!straight.events().is_empty());
        assert_eq!(
            straight.events(),
            forked.events(),
            "{profile}: fork barrier leaked into the sharded stream"
        );
    }
}
