//! Snapshot misuse surfaces as typed [`SnapshotError`]s — never a panic
//! and never a silently-wrong restore. Exercises the public tamper
//! surface for every engine: a snapshot from a different engine layout
//! version, and a snapshot whose queue holds an event at or before the
//! captured clock (not a clean barrier).

use dcqcn::CcVariant;
use mlcc_repro::*;
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator};
use netsim::packet::{PacketJob, PacketSimConfig, PacketSimulator};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use netsim::snapshot::{SnapshotError, Snapshottable, SNAPSHOT_VERSION};
use simtime::{Bandwidth, Dur, Time};
use std::error::Error;
use telemetry::NoopRecorder;
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

const BARRIER: Time = Time::from_nanos(50_000_000);

fn rate_snapshot() -> <RateSimulator as Snapshottable<NoopRecorder>>::Snapshot {
    let spec = JobSpec::reference(Model::ResNet50, 400);
    let jobs = [
        RateJob::new(spec, CcVariant::Fair),
        RateJob::new(spec, CcVariant::Fair),
    ];
    let mut sim = RateSimulator::new(RateSimConfig::default(), &jobs);
    sim.run_until(BARRIER);
    sim.snapshot().expect("clean barrier")
}

fn packet_snapshot() -> <PacketSimulator as Snapshottable<NoopRecorder>>::Snapshot {
    let spec = JobSpec::reference(Model::ResNet50, 400);
    let jobs = [
        PacketJob::new(spec, CcVariant::Fair),
        PacketJob::new(spec, CcVariant::Fair),
    ];
    let mut sim = PacketSimulator::new(PacketSimConfig::default(), &jobs);
    sim.run_until(BARRIER);
    sim.snapshot().expect("clean barrier")
}

fn fluid_snapshot() -> <FluidSimulator as Snapshottable<NoopRecorder>>::Snapshot {
    let line = Bandwidth::from_gbps(50);
    let d = dumbbell(2, line, line, Dur::ZERO);
    let t = &d.topology;
    let spec = JobSpec::reference(Model::ResNet50, 400);
    let jobs: Vec<FluidJob> = (0..2)
        .map(|i| {
            let path = t
                .route(topology::FlowKey {
                    src: d.left_hosts[i],
                    dst: d.right_hosts[i],
                    tag: 0,
                })
                .unwrap();
            FluidJob::single_path(spec, path.links().to_vec())
        })
        .collect();
    let mut sim = FluidSimulator::new(t, FluidConfig::fair(), &jobs);
    sim.run_until(BARRIER);
    sim.snapshot().expect("clean barrier")
}

/// Extracts the error without requiring the simulator to be `Debug`.
macro_rules! restore_err {
    ($sim:ty, $snap:expr) => {
        match <$sim>::restore($snap, NoopRecorder) {
            Ok(_) => panic!("tampered snapshot restored cleanly"),
            Err(e) => e,
        }
    };
}

#[test]
fn version_mismatch_is_typed_for_every_engine() {
    let e = restore_err!(RateSimulator, rate_snapshot().with_version(99));
    assert_eq!(
        e,
        SnapshotError::VersionMismatch {
            expected: SNAPSHOT_VERSION,
            found: 99
        }
    );
    let e = restore_err!(PacketSimulator, packet_snapshot().with_version(0));
    assert!(matches!(e, SnapshotError::VersionMismatch { found: 0, .. }));
    let e = restore_err!(FluidSimulator, fluid_snapshot().with_version(7));
    assert!(matches!(e, SnapshotError::VersionMismatch { found: 7, .. }));
}

#[test]
fn mid_event_barrier_is_typed_for_queue_backed_engines() {
    // The rate engine is a fixed-step stepper with no event queue, so the
    // barrier invariant is vacuous there; the two event-driven engines
    // must reject a snapshot whose queue holds an event at/before `now`.
    let e = restore_err!(PacketSimulator, packet_snapshot().with_stale_event());
    assert!(matches!(e, SnapshotError::MidEventBarrier { .. }));
    let e = restore_err!(FluidSimulator, fluid_snapshot().with_stale_event());
    let SnapshotError::MidEventBarrier { pending_at, now } = e else {
        panic!("expected MidEventBarrier, got {e}");
    };
    assert!(pending_at <= now, "stale event must not be in the future");
}

#[test]
fn snapshot_errors_are_std_errors_with_context() {
    let e = restore_err!(RateSimulator, rate_snapshot().with_version(41));
    // Usable with `?` / anyhow-style handling downstream…
    let dynamic: Box<dyn Error> = Box::new(e);
    // …and the rendering names both versions so the fix is obvious.
    let msg = dynamic.to_string();
    assert!(msg.contains("41"), "message should name the found version");
    assert!(
        msg.contains(&SNAPSHOT_VERSION.to_string()),
        "message should name the supported version"
    );
}

/// A snapshot taken at a barrier reports that instant, and restoring it
/// twice is fine — the snapshot is a value, not a consumed token.
#[test]
fn snapshots_are_reusable_values() {
    let snap = rate_snapshot();
    assert_eq!(snap.taken_at(), BARRIER);
    for _ in 0..2 {
        let mut sim =
            RateSimulator::restore(snap.clone(), NoopRecorder).expect("clean snapshot restores");
        sim.run_until(BARRIER + Dur::from_millis(10));
        assert_eq!(sim.now(), BARRIER + Dur::from_millis(10));
    }
}
