//! Snapshot round-trip fidelity: for every engine, across seeds and chaos
//! profiles,
//!
//! ```text
//! run(0 → T)  ≡  run(0 → t) + snapshot + restore + run(t → T)
//! ```
//!
//! must hold **at the telemetry byte level** — the interrupted run's
//! recorder stream, iteration times, and final clock are exactly those of
//! the uninterrupted run. This is the property the forked-sweep
//! optimisation (`--fork-at`) rests on: if a restore perturbed even one
//! event, a forked sweep would silently diverge from the run it claims to
//! reproduce.

use dcqcn::CcVariant;
use faults::ChaosConfig;
use mlcc_repro::*;
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator};
use netsim::packet::{PacketJob, PacketSimConfig, PacketSimulator};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use netsim::snapshot::Snapshottable;
use simtime::{Bandwidth, Dur, Time};
use telemetry::BufferRecorder;
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

const LINE: Bandwidth = Bandwidth::from_gbps(50);
/// Fork the interrupted run here…
const BARRIER: Time = Time::from_nanos(100_000_000);
/// …and compare both runs here.
const END: Time = Time::from_nanos(350_000_000);

/// The grid every engine round-trips over. Profile `none` checks the
/// quiet path; `stragglers` layers seeded phase noise on top so the
/// snapshot has to carry chaos stream state too.
const GRID: [(&str, u64); 4] = [
    ("none", 1),
    ("none", 7),
    ("stragglers", 1),
    ("stragglers", 7),
];

fn noise_plan(profile: &str, seed: u64) -> faults::CompiledChaos {
    let chaos = if profile == "none" {
        ChaosConfig::none()
    } else {
        let base = ChaosConfig::profile(profile).expect("builtin profile");
        ChaosConfig { seed, ..base }
    };
    chaos.compile(2, 1, Dur::from_secs(1))
}

/// Asserts uninterrupted ≡ interrupted for one engine. `$build` is a
/// constructor expression evaluated with `$rec` bound to the recorder the
/// run records into; both runs construct the engine identically, the
/// second one stops at the barrier, snapshots, restores, and resumes.
macro_rules! round_trip {
    ($sim:ty, $label:expr, $rec:ident, $build:expr) => {
        round_trip!($sim, $label, $rec, $build, BARRIER, END)
    };
    ($sim:ty, $label:expr, $rec:ident, $build:expr, $barrier:expr, $end:expr) => {{
        // Uninterrupted reference run.
        let mut base_rec = BufferRecorder::new();
        let base_times = {
            let $rec = &mut base_rec;
            let mut sim: $sim = $build;
            sim.run_until($end);
            let t: Vec<Vec<Dur>> = (0..2).map(|i| sim.progress(i).iteration_times()).collect();
            t
        };
        // Interrupted run: stop at the barrier, capture, rebuild, resume.
        let mut rt_rec = BufferRecorder::new();
        let rt_times = {
            let snap = {
                let $rec = &mut rt_rec;
                let mut sim: $sim = $build;
                sim.run_until($barrier);
                sim.snapshot().expect("run_until leaves a clean barrier")
            };
            let mut sim = <$sim>::restore(snap, &mut rt_rec).expect("snapshot restores cleanly");
            sim.run_until($end);
            let t: Vec<Vec<Dur>> = (0..2).map(|i| sim.progress(i).iteration_times()).collect();
            t
        };
        assert_eq!(base_times, rt_times, "{}: iteration times diverged", $label);
        assert_eq!(
            base_rec.events(),
            rt_rec.events(),
            "{}: telemetry stream diverged after restore",
            $label
        );
    }};
}

#[test]
fn rate_round_trips_byte_identical_across_seeds_and_profiles() {
    for (profile, seed) in GRID {
        let plan = noise_plan(profile, seed);
        let spec = JobSpec::reference(Model::ResNet50, 400);
        let mut jobs = [
            RateJob::new(
                spec,
                CcVariant::StaticUnfair {
                    timer: Dur::from_micros(100),
                },
            ),
            RateJob::new(spec, CcVariant::Fair),
        ];
        for (j, job) in jobs.iter_mut().enumerate() {
            job.noise = plan.noise[j];
        }
        round_trip!(
            RateSimulator<&mut BufferRecorder>,
            format!("rate/{profile}/s{seed}"),
            rec,
            RateSimulator::with_recorder(RateSimConfig::default(), &jobs, rec)
        );
    }
}

#[test]
fn packet_round_trips_byte_identical_across_seeds_and_profiles() {
    for (profile, seed) in GRID {
        let plan = noise_plan(profile, seed);
        let spec = JobSpec::reference(Model::ResNet50, 400);
        let mut jobs = [
            PacketJob::new(
                spec,
                CcVariant::StaticUnfair {
                    timer: Dur::from_micros(100),
                },
            ),
            PacketJob::new(spec, CcVariant::Fair),
        ];
        for (j, job) in jobs.iter_mut().enumerate() {
            job.noise = plan.noise[j];
        }
        round_trip!(
            PacketSimulator<&mut BufferRecorder>,
            format!("packet/{profile}/s{seed}"),
            rec,
            PacketSimulator::with_recorder(PacketSimConfig::default(), &jobs, rec)
        );
    }
}

#[test]
fn fluid_round_trips_byte_identical_across_seeds_and_profiles() {
    for (profile, seed) in GRID {
        let plan = noise_plan(profile, seed);
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = &d.topology;
        let spec = JobSpec::reference(Model::ResNet50, 400);
        let mut jobs: Vec<FluidJob> = (0..2)
            .map(|i| {
                let path = t
                    .route(topology::FlowKey {
                        src: d.left_hosts[i],
                        dst: d.right_hosts[i],
                        tag: 0,
                    })
                    .unwrap();
                FluidJob::single_path(spec, path.links().to_vec())
            })
            .collect();
        for (j, job) in jobs.iter_mut().enumerate() {
            job.noise = plan.noise[j];
        }
        round_trip!(
            FluidSimulator<&mut BufferRecorder>,
            format!("fluid/{profile}/s{seed}"),
            rec,
            FluidSimulator::with_recorder(t, FluidConfig::fair(), &jobs, rec)
        );
    }
}

// The fixed grid above is the deterministic cross-engine core; on top of
// it, randomized seeds and barrier placements probe the same property on
// the two cheap engines — any barrier `run_until` can reach must be a
// valid fork point.
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn rate_round_trips_for_arbitrary_seeds_and_barriers(
        seed in 0u64..1000,
        straggle in proptest::bool::ANY,
        barrier_ms in 20u64..200,
    ) {
        let plan = noise_plan(if straggle { "stragglers" } else { "none" }, seed);
        let spec = JobSpec::reference(Model::ResNet50, 400);
        let mut jobs = [
            RateJob::new(spec, CcVariant::Fair),
            RateJob::new(spec, CcVariant::Fair),
        ];
        for (j, job) in jobs.iter_mut().enumerate() {
            job.noise = plan.noise[j];
        }
        round_trip!(
            RateSimulator<&mut BufferRecorder>,
            format!("rate/prop/s{seed}/b{barrier_ms}ms"),
            rec,
            RateSimulator::with_recorder(RateSimConfig::default(), &jobs, rec),
            Time::ZERO + Dur::from_millis(barrier_ms),
            END
        );
    }

    #[test]
    fn fluid_round_trips_for_arbitrary_seeds_and_barriers(
        seed in 0u64..1000,
        straggle in proptest::bool::ANY,
        barrier_ms in 20u64..200,
    ) {
        let plan = noise_plan(if straggle { "stragglers" } else { "none" }, seed);
        let d = dumbbell(2, LINE, LINE, Dur::ZERO);
        let t = &d.topology;
        let spec = JobSpec::reference(Model::ResNet50, 400);
        let mut jobs: Vec<FluidJob> = (0..2)
            .map(|i| {
                let path = t
                    .route(topology::FlowKey {
                        src: d.left_hosts[i],
                        dst: d.right_hosts[i],
                        tag: 0,
                    })
                    .unwrap();
                FluidJob::single_path(spec, path.links().to_vec())
            })
            .collect();
        for (j, job) in jobs.iter_mut().enumerate() {
            job.noise = plan.noise[j];
        }
        round_trip!(
            FluidSimulator<&mut BufferRecorder>,
            format!("fluid/prop/s{seed}/b{barrier_ms}ms"),
            rec,
            FluidSimulator::with_recorder(t, FluidConfig::fair(), &jobs, rec),
            Time::ZERO + Dur::from_millis(barrier_ms),
            END
        );
    }
}

/// The congestion-control zoo's wrapped controllers (`Mltcp`'s progress
/// bonus slot, `Policy`'s fairness boost) carry state of their own; a
/// snapshot taken mid-slide — staggered pair, barrier inside the
/// interleaving transient — must round-trip it byte-identically on both
/// emergent engines.
#[test]
fn zoo_variant_controllers_round_trip_byte_identical() {
    let spec = JobSpec::reference(Model::ResNet50, 400);
    let pairs: [[CcVariant; 2]; 3] = [
        [
            CcVariant::Mltcp { bonus: 1.0 },
            CcVariant::Mltcp { bonus: 1.0 },
        ],
        [
            CcVariant::Policy {
                policy: dcqcn::FairnessPolicy::BonusDecay {
                    bonus: 1.0,
                    decay: 2.0,
                },
            },
            CcVariant::Policy {
                policy: dcqcn::FairnessPolicy::Proportional { weight: 1.25 },
            },
        ],
        [CcVariant::AdaptiveUnfair, CcVariant::Mltcp { bonus: 2.0 }],
    ];
    for (p, variants) in pairs.iter().enumerate() {
        let mut jobs = [
            RateJob::new(spec, variants[0]),
            RateJob::new(spec, variants[1]),
        ];
        jobs[1].start_offset = Dur::from_millis(15);
        round_trip!(
            RateSimulator<&mut BufferRecorder>,
            format!("rate/zoo-pair{p}"),
            rec,
            RateSimulator::with_recorder(RateSimConfig::default(), &jobs, rec)
        );
        let mut jobs = [
            PacketJob::new(spec, variants[0]),
            PacketJob::new(spec, variants[1]),
        ];
        jobs[1].start_offset = Dur::from_millis(15);
        round_trip!(
            PacketSimulator<&mut BufferRecorder>,
            format!("packet/zoo-pair{p}"),
            rec,
            PacketSimulator::with_recorder(PacketSimConfig::default(), &jobs, rec)
        );
    }
    // Swift is rate-engine only (delay-based; no packet marking model).
    let swift = CcVariant::Swift {
        target_delay: Dur::from_micros(30),
    };
    let jobs = [RateJob::new(spec, swift), RateJob::new(spec, swift)];
    round_trip!(
        RateSimulator<&mut BufferRecorder>,
        "rate/zoo-swift",
        rec,
        RateSimulator::with_recorder(RateSimConfig::default(), &jobs, rec)
    );
}

/// A snapshot carrying wrapped-controller state is still guarded by the
/// layout version: bumping it yields the typed mismatch, not a mangled
/// restore.
#[test]
fn zoo_variant_snapshot_rejects_version_bump() {
    use netsim::snapshot::{SnapshotError, SNAPSHOT_VERSION};
    let spec = JobSpec::reference(Model::ResNet50, 400);
    let jobs = [
        RateJob::new(spec, CcVariant::Mltcp { bonus: 1.0 }),
        RateJob::new(
            spec,
            CcVariant::Policy {
                policy: dcqcn::FairnessPolicy::BonusDecay {
                    bonus: 1.0,
                    decay: 2.0,
                },
            },
        ),
    ];
    let mut sim = RateSimulator::new(RateSimConfig::default(), &jobs);
    sim.run_until(BARRIER);
    let snap = sim
        .snapshot()
        .expect("clean barrier")
        .with_version(SNAPSHOT_VERSION + 1);
    let err = match RateSimulator::restore(snap, telemetry::NoopRecorder) {
        Ok(_) => panic!("bumped version restored"),
        Err(e) => e,
    };
    assert_eq!(
        err,
        SnapshotError::VersionMismatch {
            expected: SNAPSHOT_VERSION,
            found: SNAPSHOT_VERSION + 1,
        }
    );
}
