//! Property-based tests on the geometry solver's invariants, driven
//! through the public API of the `geometry` crate.

use geometry::{solve, Profile, SolveMode, SolverConfig};
use mlcc_repro::*;
use proptest::prelude::*;
use simtime::Dur;

fn ms(v: u64) -> Dur {
    Dur::from_millis(v)
}

/// Strategy: a random single-arc profile with period ≤ 200 ms.
fn profile_strategy() -> impl Strategy<Value = Profile> {
    (10u64..150, 5u64..100)
        .prop_map(|(compute, comm)| Profile::compute_then_comm(ms(compute), ms(comm)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: whenever the solver says Compatible, the returned
    /// rotations really produce zero overlap of the continuous arcs at
    /// 1 ms granularity over the full unified circle.
    #[test]
    fn compatible_verdicts_are_sound(
        a in profile_strategy(),
        b in profile_strategy(),
    ) {
        let cfg = SolverConfig::default();
        let verdict = solve(&[a.clone(), b.clone()], &cfg).unwrap();
        if let Some(rots) = verdict.rotations() {
            let ra = a.rotated(rots[0].shift);
            let rb = b.rotated(rots[1].shift);
            let perimeter = simtime::lcm_many(&[a.period(), b.period()]).unwrap();
            let mut t = Dur::ZERO;
            while t < perimeter {
                let ca = ra.communicating_at(t % ra.period());
                let cb = rb.communicating_at(t % rb.period());
                prop_assert!(
                    !(ca && cb),
                    "overlap at {t} under rotations {:?}",
                    rots
                );
                t += ms(1);
            }
        }
    }

    /// Necessity: if comm fractions sum above 1 (same-period jobs), the
    /// solver must refuse.
    #[test]
    fn oversubscription_is_always_incompatible(
        period in 50u64..200,
        frac_a in 0.55f64..0.95,
        frac_b in 0.55f64..0.95,
    ) {
        let p = ms(period);
        let comm_a = p.mul_f64(frac_a);
        let comm_b = p.mul_f64(frac_b);
        let a = Profile::compute_then_comm(p - comm_a, comm_a);
        let b = Profile::compute_then_comm(p - comm_b, comm_b);
        let verdict = solve(&[a, b], &SolverConfig::default()).unwrap();
        prop_assert!(!verdict.is_compatible());
        prop_assert!(verdict.overlap_fraction() > 0.0);
    }

    /// Sufficiency for same-period pairs: fractions summing comfortably
    /// below 1 are always compatible (with slack for sector rounding).
    #[test]
    fn undersubscribed_same_period_pairs_are_compatible(
        period in 50u64..200,
        frac_a in 0.05f64..0.45,
        frac_b in 0.05f64..0.45,
    ) {
        let p = ms(period);
        let comm_a = p.mul_f64(frac_a).max(ms(1));
        let comm_b = p.mul_f64(frac_b).max(ms(1));
        let a = Profile::compute_then_comm(p - comm_a, comm_a);
        let b = Profile::compute_then_comm(p - comm_b, comm_b);
        let verdict = solve(&[a, b], &SolverConfig::default()).unwrap();
        prop_assert!(
            verdict.is_compatible(),
            "fractions {frac_a:.2}+{frac_b:.2} on equal periods must fit: {verdict:?}"
        );
    }

    /// Verdicts are invariant under pre-rotation of the inputs: rotating a
    /// job's profile before solving cannot change compatibility (only the
    /// reported angles).
    #[test]
    fn verdict_invariant_under_input_rotation(
        a in profile_strategy(),
        b in profile_strategy(),
        pre in 0u64..200,
    ) {
        let cfg = SolverConfig::default();
        let v1 = solve(&[a.clone(), b.clone()], &cfg).unwrap();
        let b_rot = b.rotated(ms(pre));
        let v2 = solve(&[a, b_rot], &cfg).unwrap();
        prop_assert_eq!(v1.is_compatible(), v2.is_compatible());
    }

    /// Exclusive and capacity modes agree whenever all demands are 1.
    #[test]
    fn modes_agree_on_full_demand(
        a in profile_strategy(),
        b in profile_strategy(),
    ) {
        let ex = solve(&[a.clone(), b.clone()], &SolverConfig::default()).unwrap();
        let cap_cfg = SolverConfig { mode: SolveMode::Capacity, ..SolverConfig::default() };
        let cap = solve(&[a, b], &cap_cfg).unwrap();
        prop_assert_eq!(ex.is_compatible(), cap.is_compatible());
    }

    /// More sectors never turn a compatible pair incompatible by a large
    /// margin: a pair compatible at 1440 sectors is compatible at 720 too
    /// (coarser = more conservative is allowed the other way around).
    #[test]
    fn finer_resolution_is_less_conservative(
        a in profile_strategy(),
        b in profile_strategy(),
    ) {
        let coarse = SolverConfig { sectors: 720, ..SolverConfig::default() };
        let fine = SolverConfig { sectors: 1440, ..SolverConfig::default() };
        let vc = solve(&[a.clone(), b.clone()], &coarse).unwrap();
        let vf = solve(&[a, b], &fine).unwrap();
        // Coarse-compatible ⇒ fine-compatible (soundness is one-sided).
        if vc.is_compatible() {
            prop_assert!(
                vf.is_compatible(),
                "coarse said compatible but fine disagreed"
            );
        }
    }
}
