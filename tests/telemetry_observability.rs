//! Telemetry acceptance tests: the instrumented experiments must emit
//! every congestion-control event kind, derive nonzero ECN/CNP counters,
//! and produce byte-identical event streams across reruns with the same
//! seed (determinism is what makes traces diffable across code changes).

use mlcc::experiments::fig1::{self, Fig1Config};
use simtime::Dur;
use std::collections::BTreeSet;
use telemetry::{export, BufferRecorder};

fn quick_cfg() -> Fig1Config {
    let mut cfg = Fig1Config {
        iterations: 8,
        warmup: 3,
        ..Fig1Config::default()
    };
    // Marking jitter exercises the seeded RNG path, so determinism below
    // is a claim about the seed, not about the noise being off.
    cfg.sim.mark_noise = 0.2;
    cfg.sim.seed = 7;
    cfg.sim.trace_interval = Some(Dur::from_millis(1));
    cfg
}

/// Acceptance: a traced Fig. 1 run contains ECN-mark, CNP, rate-change and
/// phase enter/exit events, and the derived metrics report nonzero
/// `ecn_marks_total` / `cnp_total`.
#[test]
fn traced_fig1_captures_all_congestion_event_kinds() {
    let mut rec = BufferRecorder::new();
    let _ = fig1::run_traced(&quick_cfg(), &mut rec);

    let kinds: BTreeSet<&str> = rec.events().iter().map(|e| e.event.kind()).collect();
    for want in [
        "scenario",
        "ecn_mark",
        "cnp_received",
        "rate_change",
        "phase_enter",
        "phase_exit",
        "queue_depth",
    ] {
        assert!(kinds.contains(want), "missing {want:?} in {kinds:?}");
    }

    let metrics = rec.metrics();
    assert!(metrics.counter_total("ecn_marks_total") > 0);
    assert!(metrics.counter_total("cnp_total") > 0);
    assert_eq!(metrics.counter("scenarios_total", ""), 2);

    // Both exporters render the full stream and carry the scenario markers.
    let jsonl = export::jsonl(rec.events());
    assert_eq!(jsonl.lines().count(), rec.len());
    assert!(jsonl.contains("fig1/fair") && jsonl.contains("fig1/unfair"));
    let chrome = export::chrome_trace(rec.events());
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.contains("fig1/unfair"));
}

/// Determinism regression: running the Fig. 1 scenario twice with the same
/// seed yields byte-identical telemetry event streams.
#[test]
fn telemetry_streams_are_deterministic_across_reruns() {
    let cfg = quick_cfg();
    let mut a = BufferRecorder::new();
    let _ = fig1::run_traced(&cfg, &mut a);
    let mut b = BufferRecorder::new();
    let _ = fig1::run_traced(&cfg, &mut b);

    assert_eq!(a.len(), b.len(), "event counts differ across reruns");
    assert_eq!(
        export::jsonl(a.events()),
        export::jsonl(b.events()),
        "JSONL streams not byte-identical"
    );
    assert_eq!(
        export::chrome_trace(a.events()),
        export::chrome_trace(b.events())
    );

    // A different seed genuinely changes the stream (the assertion above
    // is not vacuous).
    let mut cfg2 = cfg.clone();
    cfg2.sim.seed = 8;
    let mut c = BufferRecorder::new();
    let _ = fig1::run_traced(&cfg2, &mut c);
    assert_ne!(export::jsonl(a.events()), export::jsonl(c.events()));
}
