//! Congestion-control zoo conformance: every [`CcVariant`] runs on every
//! engine that supports it, and the engines agree on what happened.
//!
//! Two contracts, mirroring `cross_engine_consistency`:
//!
//! * **Decisive completion ordering** — for each zoo cell, the emergent
//!   rate engine, the per-packet engine (DCQCN-family variants only; the
//!   delay-based `Swift` has no mark-driven packet model), and the
//!   idealized fluid engine under [`SharingPolicy::Cc`] must agree on
//!   every ordering of iteration completions that is decisive (wider than
//!   half a median iteration) once the interleaving transient has
//!   settled.
//! * **Quiet-run byte identity** — the `variants` sweep's merged
//!   telemetry stream is byte-identical across `--jobs 1/4` and
//!   `--shards 1/4`; worker counts only change wall clock.

use dcqcn::{CcVariant, FairnessPolicy};
use eventsim::Cdf;
use mlcc::experiments::variants::{self, VariantsConfig};
use mlcc_repro::*;
use netsim::fluid::{FluidConfig, FluidJob, FluidSimulator, SharingPolicy};
use netsim::packet::{PacketJob, PacketSimConfig, PacketSimulator};
use netsim::rate::{RateJob, RateSimConfig, RateSimulator};
use proptest::prelude::*;
use simtime::{Bandwidth, Dur, Time};
use telemetry::BufferRecorder;
use topology::builders::dumbbell;
use workload::{JobSpec, Model};

const LINE: Bandwidth = Bandwidth::from_gbps(50);
const ITERS: usize = 24;
/// First iteration considered settled: the self-organizing variants'
/// interleaving slide takes ~13 iterations in the rate engine at this
/// scale, and orderings during the slide are engine-specific.
const SETTLE: usize = 14;

/// What the engines must agree on for a given cell.
#[derive(Clone, Copy, PartialEq)]
enum Check {
    /// The cell's dynamics are pinned (locked contention, or a slide so
    /// decisive every engine realizes it in the same rounds): engines
    /// must agree on every decisive completion ordering.
    Order,
    /// The cell slides into interleaving through a long transient whose
    /// cost and tie-break are engine micro-timing: engines must agree on
    /// the settled steady state — solo pace, strictly alternating
    /// completions.
    Interleave,
    /// Interleaving is *emergent-only*: the timer dynamics separate the
    /// phases in the rate and packet engines, but the cell's idealized
    /// fluid weighting is a synchronizing force (a decaying early-phase
    /// bonus hands bandwidth to the job *behind* in its phase), so the
    /// fluid engine settles into a stable partial overlap instead. There
    /// the envelope bound is the contract.
    InterleaveEmergent,
}

/// The zoo: every controller family, in its natural pair configuration
/// (mirrors `fig1::zoo_cells` — self-organizing variants run symmetric
/// with a seeded stagger, static knobs are the asymmetric aggressor).
fn zoo() -> Vec<(&'static str, [CcVariant; 2], Dur, Check)> {
    let stagger = Dur::from_millis(15);
    vec![
        (
            "fair",
            [CcVariant::Fair, CcVariant::Fair],
            Dur::ZERO,
            Check::Order,
        ),
        (
            "static-unfair",
            [
                CcVariant::StaticUnfair {
                    timer: Dur::from_micros(100),
                },
                CcVariant::Fair,
            ],
            Dur::ZERO,
            Check::Order,
        ),
        (
            "adaptive",
            [CcVariant::AdaptiveUnfair, CcVariant::AdaptiveUnfair],
            stagger,
            Check::Interleave,
        ),
        (
            "mltcp",
            [
                CcVariant::Mltcp { bonus: 1.0 },
                CcVariant::Mltcp { bonus: 1.0 },
            ],
            stagger,
            Check::Interleave,
        ),
        (
            "policy-prop",
            [
                CcVariant::Policy {
                    policy: FairnessPolicy::Proportional { weight: 1.25 },
                },
                CcVariant::Fair,
            ],
            Dur::ZERO,
            Check::Interleave,
        ),
        (
            "policy-decay",
            [
                CcVariant::Policy {
                    policy: FairnessPolicy::BonusDecay {
                        bonus: 1.0,
                        decay: 2.0,
                    },
                },
                CcVariant::Policy {
                    policy: FairnessPolicy::BonusDecay {
                        bonus: 1.0,
                        decay: 2.0,
                    },
                },
            ],
            stagger,
            Check::InterleaveEmergent,
        ),
        (
            "swift",
            [
                CcVariant::Swift {
                    target_delay: Dur::from_micros(30),
                },
                CcVariant::Swift {
                    target_delay: Dur::from_micros(30),
                },
            ],
            Dur::ZERO,
            Check::Order,
        ),
    ]
}

/// One engine's view of a run: per-job iteration times and completion
/// instants.
struct Run {
    times: Vec<Vec<Dur>>,
    completions: Vec<Vec<Time>>,
}

impl Run {
    fn events(&self) -> Vec<((usize, usize), Time)> {
        self.completions
            .iter()
            .enumerate()
            .flat_map(|(j, ts)| ts.iter().enumerate().map(move |(i, &t)| ((j, i), t)))
            .collect()
    }

    fn median_ms(&self, job: usize, skip: usize) -> f64 {
        Cdf::from_samples(self.times[job].iter().skip(skip).copied().collect())
            .median()
            .as_millis_f64()
    }
}

fn capture(progress: impl Fn(usize) -> Vec<workload::IterationRecord>) -> Run {
    // Engines overshoot the iteration target by different amounts (the
    // stop condition is "every job reached ITERS"); truncate to the
    // common grid so runs are comparable key-for-key.
    let spans: Vec<Vec<workload::IterationRecord>> = (0..2)
        .map(|i| {
            let mut s = progress(i);
            s.truncate(ITERS);
            s
        })
        .collect();
    Run {
        times: spans
            .iter()
            .map(|s| s.iter().map(|t| t.completed - t.started).collect())
            .collect(),
        completions: spans
            .iter()
            .map(|s| s.iter().map(|t| t.completed).collect())
            .collect(),
    }
}

fn run_rate(spec: JobSpec, variants: [CcVariant; 2], stagger: Dur) -> Run {
    let mut jobs = [
        RateJob::new(spec, variants[0]),
        RateJob::new(spec, variants[1]),
    ];
    jobs[1].start_offset = stagger;
    let mut sim = RateSimulator::new(RateSimConfig::default(), &jobs);
    assert!(sim.run_until_iterations(ITERS, Dur::from_secs(30)));
    capture(|i| sim.progress(i).iterations().to_vec())
}

fn run_packet(spec: JobSpec, variants: [CcVariant; 2], stagger: Dur) -> Run {
    let mut jobs = [
        PacketJob::new(spec, variants[0]),
        PacketJob::new(spec, variants[1]),
    ];
    jobs[1].start_offset = stagger;
    let mut sim = PacketSimulator::new(PacketSimConfig::default(), &jobs);
    assert!(sim.run_until_iterations(ITERS, Dur::from_secs(30)));
    capture(|i| sim.progress(i).iterations().to_vec())
}

fn run_fluid(spec: JobSpec, variants: [CcVariant; 2], stagger: Dur) -> Run {
    let d = dumbbell(2, LINE, LINE, Dur::ZERO);
    let t = &d.topology;
    let jobs: Vec<FluidJob> = (0..2)
        .map(|i| {
            let path = t
                .route(topology::FlowKey {
                    src: d.left_hosts[i],
                    dst: d.right_hosts[i],
                    tag: 0,
                })
                .unwrap();
            FluidJob::single_path_at(
                spec,
                path.links().to_vec(),
                if i == 1 { stagger } else { Dur::ZERO },
            )
        })
        .collect();
    let cfg = FluidConfig {
        policy: SharingPolicy::Cc(variants.to_vec()),
        ..FluidConfig::fair()
    };
    let mut sim = FluidSimulator::new(t, cfg, &jobs);
    assert!(sim.run_until_iterations(ITERS, Dur::from_secs(30)));
    capture(|i| sim.progress(i).iterations().to_vec())
}

/// Engines must agree on every *decisive* completion ordering once the
/// interleaving transient has settled (first iterations exempt — the
/// slide evolves at engine-specific speeds) and up to within-round ties
/// (events closer than half a median iteration are engine micro-timing).
fn assert_order_conforms(a: &Run, b: &Run, label: &str) {
    let settled = |ev: Vec<((usize, usize), Time)>| -> Vec<((usize, usize), Time)> {
        ev.into_iter().filter(|((_, i), _)| *i >= SETTLE).collect()
    };
    let (ea, eb) = (settled(a.events()), settled(b.events()));
    let eps_of = |run: &Run| Dur::from_micros((run.median_ms(0, SETTLE) * 500.0) as u64);
    let (eps_a, eps_b) = (eps_of(a), eps_of(b));
    let time_in = |ev: &[((usize, usize), Time)], key| {
        ev.iter().find(|(k, _)| *k == key).expect("same grid").1
    };
    for &(k1, t1) in &ea {
        for &(k2, t2) in &ea {
            if t1 + eps_a < t2 {
                let (u1, u2) = (time_in(&eb, k1), time_in(&eb, k2));
                assert!(
                    u2 + eps_b > u1,
                    "{label}: {k1:?} decisively precedes {k2:?} in one engine \
                     ({t1:?} vs {t2:?}) but follows it in the other ({u1:?} vs {u2:?})"
                );
            }
        }
    }
}

/// A symmetric self-organizing pair breaks its tie *through* the
/// transient: engine micro-timing legitimately decides which job slides
/// ahead and how many iterations the slide costs, so absolute completion
/// instants are not comparable across engines. The decisive invariant is
/// the settled steady state itself, identical in every engine up to
/// relabeling the two jobs: both run at solo pace and their completions
/// strictly alternate (the interleaved round-robin ordering).
fn assert_interleaved(run: &Run, solo: f64, label: &str) {
    for j in 0..2 {
        let med = run.median_ms(j, SETTLE);
        assert!(
            (med - solo).abs() < solo * 0.10,
            "{label} job {j}: settled median {med:.1} ms is not solo pace {solo:.1} ms"
        );
    }
    // Cut by *time*, not index: the transient can leave one job a whole
    // iteration ahead, so index SETTLE of the two jobs falls in
    // different rounds. Settled means both jobs are past theirs.
    let cut = run
        .completions
        .iter()
        .map(|c| c[SETTLE])
        .max()
        .expect("two jobs");
    // Same at the tail: one job's grid ends a round before the other's.
    let end = run
        .completions
        .iter()
        .map(|c| *c.last().expect("nonempty"))
        .min()
        .expect("two jobs");
    let mut ev: Vec<((usize, usize), Time)> = run
        .events()
        .into_iter()
        .filter(|&(_, t)| t > cut && t <= end)
        .collect();
    ev.sort_by_key(|&(_, t)| t);
    assert!(ev.len() >= 4, "{label}: too few settled completions");
    for w in ev.windows(2) {
        assert_ne!(
            w[0].0 .0, w[1].0 .0,
            "{label}: settled completions do not alternate ({:?} then {:?})",
            w[0], w[1]
        );
    }
}

/// Every zoo cell on every supporting engine. Cells with a pinned
/// asymmetry (or none at all) must agree on decisive completion
/// orderings across engines; staggered symmetric cells must all reach
/// the same interleaved steady state. Every engine's settled median sits
/// inside the physical envelope (no faster than solo, no slower than the
/// fully-contended locked state plus delay-control overhead).
#[test]
fn every_variant_conforms_across_engines() {
    let spec = JobSpec::reference(Model::ResNet50, 400);
    let solo = spec.iteration_time_at(LINE).as_millis_f64();
    let locked = (spec.compute_time() + spec.comm_time_at(LINE) * 2).as_millis_f64();
    for (name, variants, stagger, check) in zoo() {
        let rate = run_rate(spec, variants, stagger);
        let fluid = run_fluid(spec, variants, stagger);
        let mut engines = vec![("rate", rate), ("fluid", fluid)];
        if !variants[0].is_delay_based() {
            engines.push(("packet", run_packet(spec, variants, stagger)));
        }
        match check {
            Check::Interleave => {
                for (engine, run) in &engines {
                    assert_interleaved(run, solo, &format!("{name}/{engine}"));
                }
            }
            Check::InterleaveEmergent => {
                for (engine, run) in &engines {
                    if *engine != "fluid" {
                        assert_interleaved(run, solo, &format!("{name}/{engine}"));
                    }
                }
            }
            Check::Order => {
                for pair in engines.windows(2) {
                    let ((na, a), (nb, b)) = (&pair[0], &pair[1]);
                    assert_order_conforms(a, b, &format!("{name}: {na} vs {nb}"));
                }
            }
        }
        for (engine, run) in &engines {
            for j in 0..2 {
                let med = run.median_ms(j, SETTLE);
                assert!(
                    med > solo * 0.95 && med < locked * 1.20,
                    "{name}/{engine} job {j}: median {med:.1} ms outside \
                     [solo {solo:.1}, locked {locked:.1}] envelope"
                );
            }
        }
    }
}

/// The `variants` sweep's merged telemetry is byte-identical across
/// worker and shard counts — `--jobs`/`--shards` change wall clock only.
#[test]
fn sweep_is_byte_identical_across_jobs_and_shards() {
    let mut cfg = VariantsConfig::default();
    cfg.fig1.iterations = 8;
    cfg.fig1.warmup = 2;
    let stream = |jobs: usize, shards: usize| {
        mlcc::parallel::set_jobs(jobs);
        mlcc::parallel::set_shards(shards);
        let mut rec = BufferRecorder::new();
        let r = variants::run_traced(&cfg, &mut rec);
        mlcc::parallel::set_jobs(0);
        mlcc::parallel::set_shards(0);
        assert_eq!(r.outcomes.len(), cfg.cells.len());
        rec
    };
    let base = stream(1, 1);
    assert!(!base.events().is_empty());
    for (jobs, shards) in [(4, 1), (1, 4), (4, 4)] {
        let other = stream(jobs, shards);
        assert_eq!(
            base.events(),
            other.events(),
            "--jobs {jobs} --shards {shards} leaked into the stream"
        );
        assert_eq!(base.counts(), other.counts());
    }
}

/// Contended milliseconds in `[from, to)` at 1 ms resolution: samples
/// where both jobs' sender rates are past the busy threshold.
fn overlap_ms(sim: &RateSimulator<&mut BufferRecorder>, from: Time, to: Time) -> f64 {
    let mut contended = 0.0;
    let mut t = from;
    while t < to {
        if (0..2).all(|i| sim.rate_trace(i).value_at(t).unwrap_or(0.0) >= 1.0) {
            contended += 1.0;
        }
        t += Dur::from_millis(1);
    }
    contended
}

/// One seeded rate-engine run of a symmetric pair: merged telemetry,
/// per-job completion instants, cumulative contention over the whole
/// run, and the peak sender rate.
struct PairRun {
    events: Vec<telemetry::TimedEvent>,
    completions: Vec<Vec<Time>>,
    cum_overlap_ms: f64,
    peak_rate_gbps: f64,
}

fn run_pair(variant: CcVariant, stagger: Dur, mark_noise: f64, seed: u64) -> PairRun {
    let spec = JobSpec::reference(Model::ResNet50, 400);
    let cfg = RateSimConfig {
        trace_interval: Some(Dur::from_millis(1)),
        mark_noise,
        seed,
        ..Default::default()
    };
    let mut jobs = [RateJob::new(spec, variant), RateJob::new(spec, variant)];
    jobs[1].start_offset = stagger;
    let mut rec = BufferRecorder::new();
    let mut sim = RateSimulator::with_recorder(cfg, &jobs, &mut rec);
    assert!(sim.run_until_iterations(20, Dur::from_secs(30)));
    let end = sim.now();
    let cum_overlap_ms = overlap_ms(&sim, Time::ZERO, end);
    let peak_rate_gbps = (0..2)
        .flat_map(|i| sim.rate_trace(i).iter().map(|(_, v)| v))
        .fold(0.0f64, f64::max);
    let completions = (0..2)
        .map(|i| {
            sim.progress(i)
                .iterations()
                .iter()
                .map(|t| t.completed)
                .collect()
        })
        .collect();
    drop(sim);
    PairRun {
        events: rec.events().to_vec(),
        completions,
        cum_overlap_ms,
        peak_rate_gbps,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `Mltcp { bonus: 0 }` *is* fair DCQCN: across seeds, marking noise
    /// and start staggers, the wrapped controller's runs are
    /// byte-identical to `Fair`'s — same telemetry stream, same
    /// completion instants to the nanosecond.
    #[test]
    fn mltcp_zero_bonus_is_bit_exact_fair(
        seed in 1u64..1024,
        noise_idx in 0usize..3,
        stagger_ms in 0u64..20,
    ) {
        let noise = [0.0, 0.05, 0.2][noise_idx];
        let stagger = Dur::from_millis(stagger_ms);
        let fair = run_pair(CcVariant::Fair, stagger, noise, seed);
        let mltcp = run_pair(CcVariant::Mltcp { bonus: 0.0 }, stagger, noise, seed);
        prop_assert!(!fair.events.is_empty());
        prop_assert_eq!(fair.events, mltcp.events);
        prop_assert_eq!(fair.completions, mltcp.completions);
    }

    /// A positive bonus makes the phases drift apart faster: in the one
    /// regime where plain fair DCQCN provably stays contended under
    /// deterministic marking (a 2 ms stagger at this scale — elsewhere
    /// even the fair pair eventually slides on its own), every bonus
    /// strictly reduces the run's cumulative contended time — and the
    /// sender rates never exceed the line rate while doing so.
    #[test]
    fn mltcp_positive_bonus_separates_phases(bonus in 0.25f64..4.0) {
        let stagger = Dur::from_millis(2);
        let fair = run_pair(CcVariant::Fair, stagger, 0.0, 0);
        let mltcp = run_pair(CcVariant::Mltcp { bonus }, stagger, 0.0, 0);
        prop_assert!(
            mltcp.cum_overlap_ms < fair.cum_overlap_ms,
            "bonus {} did not separate phases: mltcp contended {} ms vs fair {} ms",
            bonus, mltcp.cum_overlap_ms, fair.cum_overlap_ms
        );
        let line = RateSimConfig::default().capacity.as_gbps_f64();
        prop_assert!(
            mltcp.peak_rate_gbps <= line + 1e-9,
            "sender rate {} Gbps exceeded line rate {} Gbps",
            mltcp.peak_rate_gbps, line
        );
    }
}
