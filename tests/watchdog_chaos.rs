//! Watchdog-on-chaos acceptance tests: the PR-5 seeded fault matrix
//! (stragglers / link faults × seeds) must raise the expected alert
//! kinds through the online SLO watchdog, each alert carrying the
//! triggering events in its flight-recorder context — while a
//! `ChaosConfig::none()` run stays alert-free and byte-identical with
//! the live tap enabled.

use diagnostics::watchdog::{AlertKind, SloRules, WatchdogBank};
use faults::ChaosConfig;
use mlcc::experiments::chaos::{self, ChaosSweepConfig};
use mlcc::experiments::fig1::{self, Fig1Config};
use simtime::Dur;
use std::sync::{Mutex, OnceLock};
use telemetry::live::{self, LiveConfig};
use telemetry::{export, BufferRecorder, TapRecorder};

/// The live sink is process-global; tests that install one serialize.
fn sink_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn sweep_cfg() -> ChaosSweepConfig {
    ChaosSweepConfig {
        iterations: 16,
        ..ChaosSweepConfig::default()
    }
}

/// Recovery-deadline rules tight enough that the injected faults of the
/// seeded matrix cannot possibly be healed in time.
fn recovery_rules() -> SloRules {
    SloRules {
        max_time_to_reinterleave: Some(Dur::from_millis(50)),
        ..SloRules::default()
    }
}

#[test]
fn seeded_chaos_matrix_raises_recovery_alerts_with_fault_context() {
    let mut rec = BufferRecorder::new();
    chaos::run_traced(&sweep_cfg(), &mut rec);

    let mut bank = WatchdogBank::new(recovery_rules());
    bank.observe_stream(rec.events());
    let alerts = bank.into_alerts();
    assert!(
        !alerts.is_empty(),
        "seeded fault matrix must breach a 50ms recovery SLO"
    );
    let stalls: Vec<_> = alerts
        .iter()
        .filter(|a| a.kind == AlertKind::RecoveryStall)
        .collect();
    assert!(!stalls.is_empty(), "expected recovery_stall alerts");
    for stall in &stalls {
        assert!(
            stall.scenario.contains("links") || stall.scenario.contains("mixed"),
            "recovery stalls come from link-fault cells, got {:?}",
            stall.scenario
        );
        assert!(stall.subject.starts_with("fault@"), "{:?}", stall.subject);
        assert!(
            stall
                .context
                .iter()
                .any(|te| te.event.kind() == "link_capacity"),
            "flight-recorder context must contain the triggering fault"
        );
        assert!(stall.value > stall.threshold);
    }

    // Same stream, same rules → identical alert list (determinism is
    // what makes a golden alert-count gate possible).
    let mut bank2 = WatchdogBank::new(recovery_rules());
    bank2.observe_stream(rec.events());
    let again = bank2.into_alerts();
    assert_eq!(again.len(), alerts.len());
    for (a, b) in alerts.iter().zip(&again) {
        assert_eq!(
            (a.kind, &a.scenario, a.at, &a.subject),
            (b.kind, &b.scenario, b.at, &b.subject)
        );
    }
}

#[test]
fn straggler_cells_alone_stay_clean_on_recovery_slo() {
    // Stragglers slow compute but never degrade a link, so the recovery
    // monitor (which anchors on LinkCapacity) must not fire on them.
    let cfg = ChaosSweepConfig {
        profiles: vec!["stragglers".to_string()],
        ..sweep_cfg()
    };
    let mut rec = BufferRecorder::new();
    chaos::run_traced(&cfg, &mut rec);
    let mut bank = WatchdogBank::new(recovery_rules());
    bank.observe_stream(rec.events());
    let alerts = bank.into_alerts();
    assert!(
        alerts.is_empty(),
        "straggler-only cells fired: {:?}",
        alerts
            .iter()
            .map(|a| (a.kind, a.scenario.clone()))
            .collect::<Vec<_>>()
    );
}

fn quick_fig1() -> Fig1Config {
    Fig1Config {
        iterations: 8,
        warmup: 3,
        chaos: ChaosConfig::none(),
        ..Fig1Config::default()
    }
}

#[test]
fn chaos_none_is_alert_free_and_byte_identical_under_the_tap() {
    let _guard = sink_lock().lock().unwrap();

    // Plain recording, no live sink.
    let mut plain = BufferRecorder::new();
    fig1::run_traced(&quick_fig1(), &mut plain);
    let plain_jsonl = export::jsonl(plain.events());

    // Tapped recording with an installed sink: the engine-visible
    // recorder mirrors every event into the live channel.
    let mut handle = live::install(LiveConfig::default());
    let mut tap = TapRecorder::new(BufferRecorder::new());
    assert!(tap.is_live());
    fig1::run_traced(&quick_fig1(), &mut tap);
    let tapped = tap.into_inner();
    live::uninstall();

    assert_eq!(
        export::jsonl(tapped.events()),
        plain_jsonl,
        "live tap must be purely observational"
    );

    // The watchdog over the mirrored stream fires nothing on a healthy,
    // fault-free run under the same rules the chaos tests breach.
    let mut bank = WatchdogBank::new(recovery_rules());
    loop {
        let (batches, done) = handle.poll();
        for (scenario, events) in &batches {
            for te in events {
                bank.observe(scenario, te);
            }
        }
        if done {
            break;
        }
    }
    assert_eq!(handle.total_events() as usize, tapped.len());
    let alerts = bank.into_alerts();
    assert!(alerts.is_empty(), "chaos-none run fired: {alerts:?}");
}
